//! Memory-access optimizations for the combination-scoring kernel (§III-D)
//! and the instrumentation behind the paper's Fig 5 ablation.
//!
//! Within a `2x1`-scheme 3-hit thread, genes `i` and `j` are fixed while `k`
//! sweeps `j+1..G`. The paper's three optimizations:
//!
//! * **MemOpt1** — prefetch gene `i`'s row from global memory into the
//!   thread's local memory once, instead of re-reading it for every `k`;
//! * **MemOpt2** — additionally prefetch gene `j`'s row. On a CPU we realize
//!   the prefetch as hoisting the `row(i) & row(j)` partial AND out of the
//!   inner loop, which is exactly the data reuse the GPU prefetch buys;
//! * **BitSplicing** — physically remove covered sample columns between
//!   greedy iterations ([`crate::bitmat::BitMatrix::splice_columns`]), so
//!   every inner-loop word count shrinks; with every 64 samples excluded,
//!   three bitwise ANDs disappear per combination.
//!
//! Each variant is a separately callable scan so the ablation bench measures
//! real wall time, and every scan also *audits* its global-memory word
//! traffic ([`AccessStats`]) which feeds the GPU cost model.

use crate::bitmat::BitMatrix;
use crate::combin::unrank_pair;
use crate::kernel;
use crate::obs::Obs;
use crate::weight::{score_combo, Alpha, Scored};

/// Which prefetch level the scoring kernel runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemOptLevel {
    /// Re-read all rows from global memory every inner iteration.
    NoOpt,
    /// Prefetch gene `i`'s row (MemOpt1).
    Prefetch1,
    /// Prefetch gene `i` and `j`'s rows (MemOpt1 + MemOpt2).
    Prefetch2,
}

impl MemOptLevel {
    /// All levels in ablation order.
    pub const ALL: [MemOptLevel; 3] = [
        MemOptLevel::NoOpt,
        MemOptLevel::Prefetch1,
        MemOptLevel::Prefetch2,
    ];

    /// Display name matching the paper's figure labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MemOptLevel::NoOpt => "NoOpt",
            MemOptLevel::Prefetch1 => "MemOpt1",
            MemOptLevel::Prefetch2 => "MemOpt1+2",
        }
    }
}

/// Global-memory word traffic of one scan, in 64-bit words.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Words read from global memory inside inner loops.
    pub inner_reads: u64,
    /// Words read once per thread while prefetching.
    pub prefetch_reads: u64,
    /// Bitwise AND ops executed (arithmetic proxy).
    pub and_ops: u64,
}

impl AccessStats {
    /// Total global words read.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.inner_reads + self.prefetch_reads
    }
}

/// Result of a full 3-hit scan: the best triple plus the traffic audit.
#[derive(Clone, Copy, Debug)]
pub struct ScanResult {
    /// The argmax-F triple under the deterministic order.
    pub best: Scored<3>,
    /// Global-memory audit for the whole scan.
    pub stats: AccessStats,
}

/// Scan every 3-hit combination of `g` genes with the given prefetch level,
/// returning the best triple and the access audit.
///
/// Semantically identical across levels (asserted by tests); only the data
/// movement differs.
#[must_use]
pub fn scan_3hit(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    level: MemOptLevel,
) -> ScanResult {
    let g = tumor.n_genes() as u32;
    let wt = tumor.words_per_row() as u64;
    let wn = normal.words_per_row() as u64;
    let n_norm = normal.n_samples() as u32;
    let threads = crate::combin::tri(u64::from(g));
    let mut best = Scored::NEG_INFINITY;
    let mut stats = AccessStats::default();

    // Reusable thread-local prefetch buffers (the GPU's per-thread local
    // memory); hoisted out of the λ loop to avoid re-allocation.
    let mut local_t = vec![0u64; tumor.words_per_row()];
    let mut local_n = vec![0u64; normal.words_per_row()];

    for lambda in 0..threads {
        let (i, j) = unrank_pair(lambda);
        match level {
            MemOptLevel::NoOpt => {
                for k in j + 1..g {
                    // Reads rows i, j, k for both matrices, every iteration.
                    let s = score_combo(tumor, normal, &[i, j, k], alpha);
                    stats.inner_reads += 3 * (wt + wn);
                    stats.and_ops += 2 * (wt + wn);
                    best = best.max_det(s);
                }
            }
            MemOptLevel::Prefetch1 => {
                // Prefetch row i once; rows j and k stay in global memory.
                local_t.copy_from_slice(tumor.row(i as usize));
                local_n.copy_from_slice(normal.row(i as usize));
                stats.prefetch_reads += wt + wn;
                for k in j + 1..g {
                    let (tp, cn) = and3_counts(
                        &local_t,
                        tumor.row(j as usize),
                        tumor.row(k as usize),
                        &local_n,
                        normal.row(j as usize),
                        normal.row(k as usize),
                    );
                    stats.inner_reads += 2 * (wt + wn);
                    stats.and_ops += 2 * (wt + wn);
                    let tn = n_norm - cn;
                    let s = Scored {
                        score: alpha.score(tp, tn),
                        tp,
                        tn,
                        genes: [i, j, k],
                    };
                    best = best.max_det(s);
                }
            }
            MemOptLevel::Prefetch2 => {
                // Prefetch rows i and j and fold their AND once: the inner
                // loop touches a single global row per matrix.
                for (dst, (a, b)) in local_t
                    .iter_mut()
                    .zip(tumor.row(i as usize).iter().zip(tumor.row(j as usize)))
                {
                    *dst = a & b;
                }
                for (dst, (a, b)) in local_n
                    .iter_mut()
                    .zip(normal.row(i as usize).iter().zip(normal.row(j as usize)))
                {
                    *dst = a & b;
                }
                stats.prefetch_reads += 2 * (wt + wn);
                stats.and_ops += wt + wn;
                for k in j + 1..g {
                    let tp = kernel::and_popcount(&local_t, tumor.row(k as usize));
                    let cn = kernel::and_popcount(&local_n, normal.row(k as usize));
                    stats.inner_reads += wt + wn;
                    stats.and_ops += wt + wn;
                    let tn = n_norm - cn;
                    let s = Scored {
                        score: alpha.score(tp, tn),
                        tp,
                        tn,
                        genes: [i, j, k],
                    };
                    best = best.max_det(s);
                }
            }
        }
    }
    ScanResult { best, stats }
}

/// [`scan_3hit`] with observability: wraps the scan in a `memopt_scan` span,
/// emits one `memopt_scan` point (`level`, `scan_ns`, the [`AccessStats`]
/// word traffic), and folds the traffic into `memopt.*` counters.
#[must_use]
pub fn scan_3hit_obs(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    level: MemOptLevel,
    obs: &Obs,
) -> ScanResult {
    let span = obs.span("memopt_scan");
    let start = std::time::Instant::now();
    let result = scan_3hit(tumor, normal, alpha, level);
    let scan_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if obs.is_enabled() {
        obs.point(
            "memopt_scan",
            &[
                ("level", level.name().into()),
                ("scan_ns", scan_ns.into()),
                ("inner_reads", result.stats.inner_reads.into()),
                ("prefetch_reads", result.stats.prefetch_reads.into()),
                ("and_ops", result.stats.and_ops.into()),
                ("words_per_row", tumor.words_per_row().into()),
            ],
        );
        obs.counter_add("memopt.scans", 1);
        obs.counter_add("memopt.inner_reads", result.stats.inner_reads);
        obs.counter_add("memopt.prefetch_reads", result.stats.prefetch_reads);
        obs.counter_add("memopt.and_ops", result.stats.and_ops);
    }
    drop(span);
    result
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn and3_counts(
    t_a: &[u64],
    t_b: &[u64],
    t_c: &[u64],
    n_a: &[u64],
    n_b: &[u64],
    n_c: &[u64],
) -> (u32, u32) {
    (
        kernel::and3_popcount(t_a, t_b, t_c),
        kernel::and3_popcount(n_a, n_b, n_c),
    )
}

/// Modeled inner-loop global reads for a full 3-hit scan at `g` genes and
/// `w` words per row, per level — the closed forms behind the Fig 5 model
/// rows (both matrices assumed `w` words for simplicity).
#[must_use]
pub fn modeled_inner_reads(g: u64, w: u64, level: MemOptLevel) -> u64 {
    let combos = crate::combin::tet(g);
    match level {
        MemOptLevel::NoOpt => 3 * combos * 2 * w,
        MemOptLevel::Prefetch1 => 2 * combos * 2 * w,
        MemOptLevel::Prefetch2 => combos * 2 * w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrices(g: usize, nt: usize, nn: usize, seed: u64) -> (BitMatrix, BitMatrix) {
        // Tiny deterministic LCG so the test needs no rand dependency here.
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = BitMatrix::zeros(g, nt);
        let mut n = BitMatrix::zeros(g, nn);
        for gene in 0..g {
            for s in 0..nt {
                if next() % 3 == 0 {
                    t.set(gene, s, true);
                }
            }
            for s in 0..nn {
                if next() % 5 == 0 {
                    n.set(gene, s, true);
                }
            }
        }
        (t, n)
    }

    #[test]
    fn all_levels_agree_on_the_winner() {
        let (t, n) = random_matrices(14, 90, 70, 42);
        let base = scan_3hit(&t, &n, Alpha::PAPER, MemOptLevel::NoOpt);
        for level in [MemOptLevel::Prefetch1, MemOptLevel::Prefetch2] {
            let r = scan_3hit(&t, &n, Alpha::PAPER, level);
            assert_eq!(r.best, base.best, "{}", level.name());
        }
    }

    #[test]
    fn winner_matches_brute_force() {
        let (t, n) = random_matrices(12, 60, 40, 7);
        let mut expect = Scored::NEG_INFINITY;
        for i in 0..12u32 {
            for j in i + 1..12 {
                for k in j + 1..12 {
                    expect = expect.max_det(score_combo(&t, &n, &[i, j, k], Alpha::PAPER));
                }
            }
        }
        let got = scan_3hit(&t, &n, Alpha::PAPER, MemOptLevel::Prefetch2);
        assert_eq!(got.best, expect);
    }

    #[test]
    fn inner_reads_drop_3_to_2_to_1() {
        let (t, n) = random_matrices(16, 64, 64, 3);
        let r0 = scan_3hit(&t, &n, Alpha::PAPER, MemOptLevel::NoOpt);
        let r1 = scan_3hit(&t, &n, Alpha::PAPER, MemOptLevel::Prefetch1);
        let r2 = scan_3hit(&t, &n, Alpha::PAPER, MemOptLevel::Prefetch2);
        // Exact 3:2:1 ratio of inner-loop global reads.
        assert_eq!(r0.stats.inner_reads % 3, 0);
        assert_eq!(r0.stats.inner_reads / 3, r2.stats.inner_reads);
        assert_eq!(r1.stats.inner_reads, 2 * r2.stats.inner_reads);
        // Prefetch traffic is the small price paid.
        assert_eq!(r0.stats.prefetch_reads, 0);
        assert!(r1.stats.prefetch_reads < r1.stats.inner_reads);
        assert!(r2.stats.prefetch_reads < r2.stats.inner_reads);
    }

    #[test]
    fn audit_matches_model() {
        let (t, n) = random_matrices(16, 64, 64, 9);
        let w = t.words_per_row() as u64;
        assert_eq!(w, n.words_per_row() as u64);
        for level in MemOptLevel::ALL {
            let r = scan_3hit(&t, &n, Alpha::PAPER, level);
            assert_eq!(
                r.stats.inner_reads,
                modeled_inner_reads(16, w, level),
                "{}",
                level.name()
            );
        }
    }

    #[test]
    fn splicing_reduces_words_and_preserves_semantics() {
        let (t, n) = random_matrices(10, 200, 80, 11);
        let full = scan_3hit(&t, &n, Alpha::PAPER, MemOptLevel::Prefetch2);
        // Cover the winner's samples and splice them out.
        let cov = t.cover_mask(&full.best.genes);
        let mut keep = t.full_mask();
        for (k, c) in keep.iter_mut().zip(cov.iter()) {
            *k &= !c;
        }
        let spliced = t.splice_columns(&keep);
        assert!(spliced.n_samples() < t.n_samples());
        // After splicing, the old winner's TP drops to zero.
        assert_eq!(spliced.count_all(&full.best.genes), 0);
        // And the next scan reads fewer tumor words per combination.
        let next = scan_3hit(&spliced, &n, Alpha::PAPER, MemOptLevel::Prefetch2);
        assert!(next.stats.total_reads() <= full.stats.total_reads());
    }
}
