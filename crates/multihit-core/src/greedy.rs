//! The greedy weighted-set-cover loop (§II-B) and a fast combination
//! scanner.
//!
//! Per iteration the algorithm (1) scores **every** `C(G,H)` combination,
//! (2) picks the deterministic argmax-F, (3) excludes the tumor samples that
//! combination covers, and repeats until every tumor sample is covered (or a
//! combination covers nothing new).
//!
//! The scan is the expensive part. [`ComboScanner`] walks combinations in
//! colex order keeping a stack of partial row-ANDs — when only the lowest
//! coordinate advances (the overwhelmingly common case), scoring one more
//! combination costs a single fused AND+popcount pass per matrix. This is
//! the CPU realization of the paper's MemOpt prefetching, generalized to
//! every level of the `H`-deep loop.
//!
//! Covered samples are excluded either by **BitSplicing** (physically
//! shrinking the tumor matrix, §III-D) or by carrying an active-column mask
//! (the unspliced baseline the Fig 5 ablation compares against). Both modes
//! produce identical combinations; tests assert it.

use crate::bitmat::BitMatrix;
use crate::combin::{binomial, unrank_tuple};
use crate::obs::Obs;
use crate::weight::{Alpha, Combo, Scored};
use rayon::prelude::*;
use std::time::Instant;

/// How covered tumor samples are excluded between iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exclusion {
    /// Physically remove covered columns (the paper's BitSplicing).
    BitSplice,
    /// Keep the matrix intact and AND an active mask into every score.
    Mask,
}

impl Exclusion {
    /// Stable name used in metric streams.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Exclusion::BitSplice => "BitSplice",
            Exclusion::Mask => "Mask",
        }
    }
}

/// Configuration for a greedy discovery run.
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// True-positive weight α (paper: 0.1).
    pub alpha: Alpha,
    /// Exclusion strategy between iterations.
    pub exclusion: Exclusion,
    /// Stop after this many combinations even if tumors remain (0 = no cap).
    pub max_combinations: usize,
    /// Score combinations across rayon worker threads.
    pub parallel: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            alpha: Alpha::PAPER,
            exclusion: Exclusion::BitSplice,
            max_combinations: 0,
            parallel: true,
        }
    }
}

/// One greedy iteration's outcome.
#[derive(Clone, Copy, Debug)]
pub struct IterationRecord<const H: usize> {
    /// The winning combination of this iteration.
    pub best: Scored<H>,
    /// F value (Eq. 1) against the *original* cohort totals.
    pub f: f64,
    /// Newly covered tumor samples.
    pub newly_covered: u32,
    /// Tumor samples still uncovered after this iteration.
    pub remaining: u32,
    /// Tumor-matrix words per row when this iteration scanned (shows the
    /// BitSplicing shrinkage).
    pub words_per_row: usize,
}

/// Result of a full greedy run.
#[derive(Clone, Debug)]
pub struct GreedyResult<const H: usize> {
    /// The selected combinations, in selection order.
    pub combinations: Vec<Combo<H>>,
    /// Per-iteration diagnostics.
    pub iterations: Vec<IterationRecord<H>>,
    /// Tumor samples never covered (nonzero only if capped or stalled).
    pub uncovered: u32,
}

impl<const H: usize> GreedyResult<H> {
    /// Fraction of tumor samples covered by the selected set.
    #[must_use]
    pub fn coverage(&self, n_tumor: u32) -> f64 {
        if n_tumor == 0 {
            return 1.0;
        }
        f64::from(n_tumor - self.uncovered) / f64::from(n_tumor)
    }
}

/// Incremental colex-order scanner over all `C(G,H)` combinations.
///
/// Maintains, per level `t`, the AND of the rows of genes `c[t..H]`
/// (tumor and normal separately, plus an optional tumor column mask folded
/// into the top level). Advancing the combination recomputes only the
/// levels at or below the coordinate that moved.
pub struct ComboScanner<'a, const H: usize> {
    tumor: &'a BitMatrix,
    normal: &'a BitMatrix,
    tumor_mask: Option<&'a [u64]>,
    alpha: Alpha,
    g: u32,
    /// partial_t[t] = AND over tumor rows of genes c[t..H] (and the mask).
    partial_t: Vec<Vec<u64>>,
    partial_n: Vec<Vec<u64>>,
    combo: [u32; H],
}

impl<'a, const H: usize> ComboScanner<'a, H> {
    /// Create a scanner positioned at combination rank `start`.
    ///
    /// `tumor_mask`, when given, restricts TP counting to active columns.
    ///
    /// # Panics
    /// Panics if the matrices disagree on gene count or `H > G`.
    #[must_use]
    pub fn new(
        tumor: &'a BitMatrix,
        normal: &'a BitMatrix,
        tumor_mask: Option<&'a [u64]>,
        alpha: Alpha,
        start: u64,
    ) -> Self {
        assert_eq!(tumor.n_genes(), normal.n_genes(), "gene universes differ");
        let g = tumor.n_genes() as u32;
        assert!(H as u32 <= g, "H = {H} exceeds G = {g}");
        let mut s = ComboScanner {
            tumor,
            normal,
            tumor_mask,
            alpha,
            g,
            partial_t: vec![vec![0; tumor.words_per_row()]; H],
            partial_n: vec![vec![0; normal.words_per_row()]; H],
            combo: unrank_tuple::<H>(start),
        };
        s.rebuild_from(H - 1);
        s
    }

    /// Recompute partial ANDs for levels `t..=0` after `combo[t..]` changed.
    fn rebuild_from(&mut self, t: usize) {
        for level in (0..=t).rev() {
            let gene = self.combo[level] as usize;
            if level == H - 1 {
                let row_t = self.tumor.row(gene);
                match self.tumor_mask {
                    Some(m) => {
                        for (dst, (r, mw)) in
                            self.partial_t[level].iter_mut().zip(row_t.iter().zip(m))
                        {
                            *dst = r & mw;
                        }
                    }
                    None => self.partial_t[level].copy_from_slice(row_t),
                }
                self.partial_n[level].copy_from_slice(self.normal.row(gene));
            } else {
                let (lower_t, upper_t) = self.partial_t.split_at_mut(level + 1);
                for (dst, (r, up)) in lower_t[level]
                    .iter_mut()
                    .zip(self.tumor.row(gene).iter().zip(upper_t[0].iter()))
                {
                    *dst = r & up;
                }
                let (lower_n, upper_n) = self.partial_n.split_at_mut(level + 1);
                for (dst, (r, up)) in lower_n[level]
                    .iter_mut()
                    .zip(self.normal.row(gene).iter().zip(upper_n[0].iter()))
                {
                    *dst = r & up;
                }
            }
        }
    }

    /// Score the current combination.
    #[inline]
    fn score_current(&self) -> Scored<H> {
        let tp: u32 = self.partial_t[0].iter().map(|w| w.count_ones()).sum();
        let covered_n: u32 = self.partial_n[0].iter().map(|w| w.count_ones()).sum();
        let tn = self.normal.n_samples() as u32 - covered_n;
        Scored {
            score: self.alpha.score(tp, tn),
            tp,
            tn,
            genes: self.combo,
        }
    }

    /// Advance to the next combination in colex order. Returns `false` when
    /// the enumeration is exhausted.
    fn advance(&mut self) -> bool {
        // Find the smallest level whose coordinate can still move up.
        for t in 0..H {
            let limit = if t + 1 < H { self.combo[t + 1] } else { self.g };
            if self.combo[t] + 1 < limit {
                self.combo[t] += 1;
                // Reset all lower coordinates to their minimal values.
                for (low, c) in self.combo.iter_mut().enumerate().take(t) {
                    *c = low as u32;
                }
                self.rebuild_from(t);
                return true;
            }
        }
        false
    }

    /// Scan `count` combinations starting at the current position, returning
    /// the deterministic best.
    #[must_use]
    pub fn scan(&mut self, count: u64) -> Scored<H> {
        let mut best = Scored::NEG_INFINITY;
        for step in 0..count {
            best = best.max_det(self.score_current());
            if step + 1 < count && !self.advance() {
                break;
            }
        }
        best
    }
}

/// Find the argmax-F combination over all `C(G,H)` candidates.
///
/// With `cfg.parallel` the λ-range is split into contiguous chunks scanned by
/// rayon workers; the per-chunk winners fold with the deterministic combiner,
/// so the result is identical to the sequential scan.
#[must_use]
pub fn best_combination<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    tumor_mask: Option<&[u64]>,
    cfg: &GreedyConfig,
) -> Scored<H> {
    let g = tumor.n_genes() as u64;
    let total = binomial(g, H as u64);
    if total == 0 {
        return Scored::NEG_INFINITY;
    }
    if !cfg.parallel {
        let mut sc = ComboScanner::<H>::new(tumor, normal, tumor_mask, cfg.alpha, 0);
        return sc.scan(total);
    }
    let chunks = (rayon::current_num_threads() as u64 * 8).clamp(1, total);
    let chunk = total.div_ceil(chunks);
    (0..chunks)
        .into_par_iter()
        .map(|c| {
            let start = c * chunk;
            if start >= total {
                return Scored::NEG_INFINITY;
            }
            let count = chunk.min(total - start);
            let mut sc = ComboScanner::<H>::new(tumor, normal, tumor_mask, cfg.alpha, start);
            sc.scan(count)
        })
        .reduce(|| Scored::NEG_INFINITY, Scored::max_det)
}

/// Run the full greedy weighted-set-cover discovery for `H`-hit
/// combinations.
#[must_use]
pub fn discover<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    cfg: &GreedyConfig,
) -> GreedyResult<H> {
    discover_obs(tumor, normal, cfg, &Obs::disabled())
}

/// [`discover`] with per-iteration observability.
///
/// Emits one `greedy_iter` point per iteration (`scan_ns`, `combos_scored`,
/// `combos_per_sec`, `splice_ns`, coverage progress) plus `greedy.*`
/// counters, all under a `discover` span. With a disabled [`Obs`] the
/// instrumentation is branch-only and the selected combinations are
/// identical to [`discover`] by construction.
#[must_use]
pub fn discover_obs<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    cfg: &GreedyConfig,
    obs: &Obs,
) -> GreedyResult<H> {
    let _run_span = obs.span("discover");
    let n_tumor = tumor.n_samples() as u32;
    let n_normal = normal.n_samples() as u32;
    let mut work_tumor = tumor.clone();
    let mut mask = tumor.full_mask();
    let mut remaining = n_tumor;
    let mut combinations = Vec::new();
    let mut iterations = Vec::new();

    while remaining > 0 {
        if cfg.max_combinations != 0 && combinations.len() >= cfg.max_combinations {
            break;
        }
        let iter_span = obs.span("greedy_iter");
        let mask_arg = match cfg.exclusion {
            Exclusion::BitSplice => None,
            Exclusion::Mask => Some(mask.as_slice()),
        };
        let combos_scored = binomial(work_tumor.n_genes() as u64, H as u64);
        let scan_start = Instant::now();
        let best = best_combination::<H>(&work_tumor, normal, mask_arg, cfg);
        let scan_ns = u64::try_from(scan_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if best.tp == 0 {
            // No combination covers any remaining tumor sample: stall.
            drop(iter_span);
            break;
        }
        let newly = best.tp;
        remaining -= newly;
        let words = work_tumor.words_per_row();
        let splice_start = Instant::now();
        let mut splice_words = 0u64;
        match cfg.exclusion {
            Exclusion::BitSplice => {
                let cov = work_tumor.cover_mask(&best.genes);
                let mut keep = work_tumor.full_mask();
                for (k, c) in keep.iter_mut().zip(cov.iter()) {
                    *k &= !c;
                }
                splice_words = work_tumor.splice_words_written(&keep);
                work_tumor = work_tumor.splice_columns(&keep);
            }
            Exclusion::Mask => {
                let cov = work_tumor.cover_mask(&best.genes);
                for (m, c) in mask.iter_mut().zip(cov.iter()) {
                    *m &= !c;
                }
            }
        }
        let splice_ns = u64::try_from(splice_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if obs.is_enabled() {
            let combos_per_sec = if scan_ns == 0 {
                0.0
            } else {
                combos_scored as f64 / (scan_ns as f64 / 1e9)
            };
            obs.point(
                "greedy_iter",
                &[
                    ("iter", iterations.len().into()),
                    ("scan_ns", scan_ns.into()),
                    ("combos_scored", combos_scored.into()),
                    ("combos_per_sec", combos_per_sec.into()),
                    ("exclusion", cfg.exclusion.name().into()),
                    ("splice_ns", splice_ns.into()),
                    ("splice_words", splice_words.into()),
                    ("newly_covered", u64::from(newly).into()),
                    ("remaining", u64::from(remaining).into()),
                    ("words_per_row", words.into()),
                ],
            );
            obs.counter_add("greedy.iterations", 1);
            obs.counter_add("greedy.combos_scored", combos_scored);
            obs.counter_add("greedy.scan_ns", scan_ns);
            obs.counter_add("greedy.splice_ns", splice_ns);
            obs.counter_add("greedy.splice_words", splice_words);
        }
        drop(iter_span);
        iterations.push(IterationRecord {
            best,
            f: best.f_value(cfg.alpha, n_tumor, n_normal),
            newly_covered: newly,
            remaining,
            words_per_row: words,
        });
        combinations.push(best.genes);
    }

    GreedyResult {
        combinations,
        iterations,
        uncovered: remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::score_combo;

    fn lcg_matrices(g: usize, nt: usize, nn: usize, seed: u64) -> (BitMatrix, BitMatrix) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = BitMatrix::zeros(g, nt);
        let mut n = BitMatrix::zeros(g, nn);
        for gene in 0..g {
            for s in 0..nt {
                if next() % 2 == 0 {
                    t.set(gene, s, true);
                }
            }
            for s in 0..nn {
                if next() % 6 == 0 {
                    n.set(gene, s, true);
                }
            }
        }
        (t, n)
    }

    fn brute_best<const H: usize>(t: &BitMatrix, n: &BitMatrix, mask: Option<&[u64]>) -> Scored<H> {
        let g = t.n_genes() as u64;
        let mut best = Scored::NEG_INFINITY;
        for l in 0..binomial(g, H as u64) {
            let genes = unrank_tuple::<H>(l);
            let mut s = score_combo(t, n, &genes, Alpha::PAPER);
            if let Some(m) = mask {
                // Recount TP under the mask.
                let cov = t.cover_mask(&genes);
                let tp: u32 = cov.iter().zip(m).map(|(c, mm)| (c & mm).count_ones()).sum();
                s = Scored {
                    score: Alpha::PAPER.score(tp, s.tn),
                    tp,
                    tn: s.tn,
                    genes,
                };
            }
            best = best.max_det(s);
        }
        best
    }

    #[test]
    fn scanner_matches_brute_force_h2_h3_h4() {
        let (t, n) = lcg_matrices(11, 100, 60, 5);
        let cfg = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        assert_eq!(
            best_combination::<2>(&t, &n, None, &cfg),
            brute_best::<2>(&t, &n, None)
        );
        assert_eq!(
            best_combination::<3>(&t, &n, None, &cfg),
            brute_best::<3>(&t, &n, None)
        );
        assert_eq!(
            best_combination::<4>(&t, &n, None, &cfg),
            brute_best::<4>(&t, &n, None)
        );
    }

    #[test]
    fn parallel_equals_sequential() {
        let (t, n) = lcg_matrices(13, 128, 64, 21);
        let seq = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        let par = GreedyConfig {
            parallel: true,
            ..GreedyConfig::default()
        };
        for _ in 0..2 {
            assert_eq!(
                best_combination::<3>(&t, &n, None, &par),
                best_combination::<3>(&t, &n, None, &seq)
            );
        }
    }

    #[test]
    fn scanner_respects_mask() {
        let (t, n) = lcg_matrices(9, 70, 40, 2);
        // Mask off the first word of samples.
        let mut mask = t.full_mask();
        mask[0] = 0;
        let cfg = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        let got = best_combination::<2>(&t, &n, Some(&mask), &cfg);
        assert_eq!(got, brute_best::<2>(&t, &n, Some(&mask)));
    }

    #[test]
    fn scanner_chunked_start_positions() {
        // Starting mid-range must continue the same enumeration.
        let (t, n) = lcg_matrices(10, 64, 32, 8);
        let total = binomial(10, 3);
        let mut full = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
        let whole = full.scan(total);
        let mut a = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
        let first = a.scan(total / 2);
        let mut b = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, total / 2);
        let second = b.scan(total - total / 2);
        assert_eq!(first.max_det(second), whole);
    }

    #[test]
    fn greedy_covers_all_tumors_on_easy_data() {
        // Plant two 2-hit combos that jointly cover everything.
        let mut t = BitMatrix::zeros(6, 80);
        let mut n = BitMatrix::zeros(6, 40);
        for s in 0..40 {
            t.set(0, s, true);
            t.set(1, s, true);
        }
        for s in 40..80 {
            t.set(2, s, true);
            t.set(3, s, true);
        }
        // Sprinkle normals with singleton mutations only.
        for s in 0..40 {
            n.set(4, s % 40, true);
        }
        let res = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(res.uncovered, 0);
        assert_eq!(res.combinations.len(), 2);
        let set: std::collections::HashSet<_> = res.combinations.iter().copied().collect();
        assert!(set.contains(&[0, 1]) && set.contains(&[2, 3]));
        assert!((res.coverage(80) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn splice_and_mask_modes_select_identical_combinations() {
        let (t, n) = lcg_matrices(10, 150, 80, 33);
        let a = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                exclusion: Exclusion::BitSplice,
                parallel: false,
                ..Default::default()
            },
        );
        let b = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                exclusion: Exclusion::Mask,
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(a.combinations, b.combinations);
        assert_eq!(a.uncovered, b.uncovered);
        // Splicing shrinks rows over iterations; masking never does.
        let spliced_words: Vec<_> = a.iterations.iter().map(|r| r.words_per_row).collect();
        let masked_words: Vec<_> = b.iterations.iter().map(|r| r.words_per_row).collect();
        assert!(spliced_words.last().unwrap() <= spliced_words.first().unwrap());
        assert!(masked_words.iter().all(|&w| w == masked_words[0]));
    }

    #[test]
    fn greedy_iteration_records_are_consistent() {
        let (t, n) = lcg_matrices(8, 100, 50, 12);
        let res = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let mut covered = 0u32;
        for rec in &res.iterations {
            covered += rec.newly_covered;
            assert_eq!(rec.remaining, 100 - covered);
            assert!(rec.newly_covered > 0);
            assert!(rec.f > 0.0);
        }
        assert_eq!(res.uncovered, 100 - covered);
    }

    #[test]
    fn max_combinations_caps_the_run() {
        let (t, n) = lcg_matrices(8, 200, 50, 90);
        let res = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                max_combinations: 1,
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(res.combinations.len(), 1);
    }

    #[test]
    fn greedy_f_is_nonincreasing() {
        // Each iteration's F (on the shrinking tumor set) cannot beat the
        // previous pick's F: the previous argmax dominated the same pool plus
        // covered samples.
        let (t, n) = lcg_matrices(9, 120, 60, 77);
        let res = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                ..Default::default()
            },
        );
        for w in res.iterations.windows(2) {
            assert!(w[1].f <= w[0].f + 1e-12);
        }
    }
}
