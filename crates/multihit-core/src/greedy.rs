//! The greedy weighted-set-cover loop (§II-B) and a fast combination
//! scanner.
//!
//! Per iteration the algorithm (1) scores **every** `C(G,H)` combination,
//! (2) picks the deterministic argmax-F, (3) excludes the tumor samples that
//! combination covers, and repeats until every tumor sample is covered (or a
//! combination covers nothing new).
//!
//! The scan is the expensive part. [`ComboScanner`] walks combinations in
//! colex order keeping a stack of partial row-ANDs — when only the lowest
//! coordinate advances (the overwhelmingly common case), scoring one more
//! combination costs a single fused AND+popcount pass per matrix (via
//! [`crate::kernel`], runtime-dispatched to AVX2/POPCNT). This is the CPU
//! realization of the paper's MemOpt prefetching, generalized to every
//! level of the `H`-deep loop.
//!
//! On top of the incremental scan sit two exact accelerations:
//!
//! * **Branch-and-bound pruning** ([`ComboScanner::scan_pruned`]): at colex
//!   level `t` the partial-AND popcount bounds TP for *every* completion of
//!   the lower coordinates, so `F_ub = (α·TP_partial + Nn)/(Nt+Nn)`; when
//!   `F_ub` cannot beat the running best, the entire subtree sharing that
//!   prefix — `C(c[t], t)` combinations — is skipped. The argmax is
//!   bit-identical to the un-pruned scan by construction (ties lose to the
//!   colex-earlier incumbent), and the test suite asserts it.
//! * **Work stealing** ([`best_combination`]): an atomic λ-cursor
//!   ([`crate::par::BlockQueue`]) hands out guided-size blocks so
//!   pruning- and splice-induced imbalance cannot stall workers on static
//!   chunks; per-worker winners fold with the deterministic
//!   [`Scored::max_det`]. Workers share their best score through an atomic,
//!   which only ever *increases* pruning power (strict-inequality cut), so
//!   the fold stays bit-identical to the sequential scan.
//!
//! Covered samples are excluded either by **BitSplicing** (physically
//! shrinking the tumor matrix, §III-D) or by carrying an active-column mask
//! (the unspliced baseline the Fig 5 ablation compares against). Both modes
//! produce identical combinations; tests assert it.

use crate::bitmat::{BitMatrix, SkipIndex};
use crate::combin::{binomial, unrank_tuple};
use crate::frontier::{self, Frontier, TopK};
use crate::kernel;
use crate::obs::Obs;
use crate::par::{self, BlockQueue};
use crate::reduce::fold_partials;
use crate::weight::{Alpha, Combo, Scored};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How covered tumor samples are excluded between iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exclusion {
    /// Physically remove covered columns (the paper's BitSplicing).
    BitSplice,
    /// Keep the matrix intact and AND an active mask into every score.
    Mask,
}

impl Exclusion {
    /// Stable name used in metric streams.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Exclusion::BitSplice => "BitSplice",
            Exclusion::Mask => "Mask",
        }
    }
}

/// When the scan uses the sparse (skip-list) partial-AND representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseMode {
    /// Measure the matrices' zero-word fraction and enable the sparse path
    /// when at least [`SPARSE_AUTO_THRESHOLD`] of packed words are zero.
    Auto,
    /// Always scan sparse.
    On,
    /// Always scan dense.
    Off,
}

impl SparseMode {
    /// Stable name used in metric streams and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SparseMode::Auto => "auto",
            SparseMode::On => "on",
            SparseMode::Off => "off",
        }
    }
}

/// Zero-word fraction (across tumor + normal words) at which
/// [`SparseMode::Auto`] switches the scan to the sparse path.
pub const SPARSE_AUTO_THRESHOLD: f64 = 0.5;

/// Configuration for a greedy discovery run.
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// True-positive weight α (paper: 0.1).
    pub alpha: Alpha,
    /// Exclusion strategy between iterations.
    pub exclusion: Exclusion,
    /// Stop after this many combinations even if tumors remain (0 = no cap).
    pub max_combinations: usize,
    /// Score combinations across work-stealing worker threads.
    pub parallel: bool,
    /// Skip subtrees whose F upper bound cannot beat the running best.
    /// Exact: the selected combinations are bit-identical either way.
    pub prune: bool,
    /// Lazy-greedy frontier size: retain the top-K combinations after a
    /// full scan and skip later scans whose argmax the frontier proves
    /// (see [`crate::frontier`]). 0 disables the frontier; the selected
    /// combinations are bit-identical either way.
    pub frontier_k: usize,
    /// Run the exact [`crate::kernelize`] reduction before the greedy loop
    /// and un-map the result. The selected panel is bit-identical either
    /// way; defaults off so existing call sites keep their exact behavior.
    pub kernelize: bool,
    /// Sparse (skip-list) scan selection; bit-identical in every mode.
    pub sparse: SparseMode,
    /// Score level-0 sibling runs through the gene-tiled block kernels
    /// ([`kernel::and_popcount_block`]) instead of stepping one combination
    /// at a time. Bit-identical either way (level-0 siblings are never
    /// individually pruned); off restores the stepping reference path.
    pub block_sweep: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            alpha: Alpha::PAPER,
            exclusion: Exclusion::BitSplice,
            max_combinations: 0,
            parallel: true,
            prune: true,
            frontier_k: frontier::DEFAULT_FRONTIER_K,
            kernelize: false,
            sparse: SparseMode::Auto,
            block_sweep: true,
        }
    }
}

/// Work accounting of one combination scan (sequential or work-stealing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Combinations actually scored.
    pub scored: u64,
    /// Subtrees eliminated by the F upper bound.
    pub pruned_subtrees: u64,
    /// Combinations skipped inside pruned subtrees.
    pub pruned_combos: u64,
    /// λ-blocks dispatched by the work-stealing cursor.
    pub blocks: u64,
    /// Blocks beyond each worker's first (load rebalanced at runtime).
    pub steals: u64,
    /// All-zero 64-bit words the sparse scan never touched (0 when dense).
    pub words_skipped: u64,
    /// Level-0 block-kernel invocations (0 when stepping).
    pub block_sweeps: u64,
    /// Candidate gene rows scored through the block kernel.
    pub swept_rows: u64,
    /// Scanners constructed (allocation events) during this scan. Workers
    /// re-seek one scanner across stolen blocks, so this stays at one per
    /// participating worker no matter how many blocks churn.
    pub scanner_builds: u64,
}

impl ScanStats {
    /// Accumulate another worker's counters.
    pub fn merge(&mut self, other: &ScanStats) {
        self.scored += other.scored;
        self.pruned_subtrees += other.pruned_subtrees;
        self.pruned_combos += other.pruned_combos;
        self.blocks += other.blocks;
        self.steals += other.steals;
        self.words_skipped += other.words_skipped;
        self.block_sweeps += other.block_sweeps;
        self.swept_rows += other.swept_rows;
        self.scanner_builds += other.scanner_builds;
    }

    /// Mean candidate rows per block-kernel call (0 when stepping).
    #[must_use]
    pub fn rows_per_sweep(&self) -> f64 {
        if self.block_sweeps == 0 {
            0.0
        } else {
            self.swept_rows as f64 / self.block_sweeps as f64
        }
    }

    /// Fraction of the enumerated range eliminated without scoring.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.scored + self.pruned_combos;
        if total == 0 {
            0.0
        } else {
            self.pruned_combos as f64 / total as f64
        }
    }
}

/// One greedy iteration's outcome.
#[derive(Clone, Copy, Debug)]
pub struct IterationRecord<const H: usize> {
    /// The winning combination of this iteration.
    pub best: Scored<H>,
    /// F value (Eq. 1) against the *original* cohort totals.
    pub f: f64,
    /// Newly covered tumor samples.
    pub newly_covered: u32,
    /// Tumor samples still uncovered after this iteration.
    pub remaining: u32,
    /// Tumor-matrix words per row when this iteration scanned (shows the
    /// BitSplicing shrinkage).
    pub words_per_row: usize,
}

/// Result of a full greedy run.
#[derive(Clone, Debug)]
pub struct GreedyResult<const H: usize> {
    /// The selected combinations, in selection order.
    pub combinations: Vec<Combo<H>>,
    /// Per-iteration diagnostics.
    pub iterations: Vec<IterationRecord<H>>,
    /// Tumor samples never covered (nonzero only if capped or stalled).
    pub uncovered: u32,
}

impl<const H: usize> GreedyResult<H> {
    /// Fraction of tumor samples covered by the selected set.
    #[must_use]
    pub fn coverage(&self, n_tumor: u32) -> f64 {
        if n_tumor == 0 {
            return 1.0;
        }
        f64::from(n_tumor - self.uncovered) / f64::from(n_tumor)
    }
}

/// Incremental colex-order scanner over all `C(G,H)` combinations.
///
/// Maintains, per level `t`, the AND of the rows of genes `c[t..H]`
/// (tumor and normal separately, plus an optional tumor column mask folded
/// into the top level). Advancing the combination recomputes only the
/// levels at or below the coordinate that moved.
pub struct ComboScanner<'a, const H: usize> {
    tumor: &'a BitMatrix,
    normal: &'a BitMatrix,
    tumor_mask: Option<&'a [u64]>,
    alpha: Alpha,
    g: u32,
    n_normal: u32,
    /// partial_t[t] = AND over tumor rows of genes c[t..H] (and the mask).
    /// Empty (unallocated) when scanning sparse.
    partial_t: Vec<Vec<u64>>,
    partial_n: Vec<Vec<u64>>,
    /// Sparse mode: per-gene skip lists over all-zero words. When set, the
    /// per-level partials are kept *compacted* as parallel (word index,
    /// word value) vectors instead of dense rows — the AND support only
    /// shrinks as the chain deepens, so deeper rebuilds touch fewer words.
    skip: Option<(&'a SkipIndex, &'a SkipIndex)>,
    sp_idx_t: Vec<Vec<u32>>,
    sp_val_t: Vec<Vec<u64>>,
    sp_idx_n: Vec<Vec<u32>>,
    sp_val_n: Vec<Vec<u64>>,
    /// Words a dense rebuild would have touched that the sparse path
    /// skipped (both matrices).
    words_skipped: u64,
    /// pop_t[t] = popcount of partial_t[t], maintained by the fused
    /// AND+store+popcount kernel during rebuilds. pop_t[0] is TP; every
    /// higher level is the branch-and-bound TP upper bound for its subtree.
    pop_t: [u32; H],
    pop_n: [u32; H],
    combo: [u32; H],
    /// Rows per level-0 block-kernel call; `<= 1` falls back to stepping.
    sweep_width: usize,
    /// Block-kernel invocations made by this scanner.
    block_sweeps: u64,
    /// Candidate rows scored through the block kernel.
    swept_rows: u64,
}

impl<'a, const H: usize> ComboScanner<'a, H> {
    /// Create a scanner positioned at combination rank `start`.
    ///
    /// `tumor_mask`, when given, restricts TP counting to active columns.
    ///
    /// # Panics
    /// Panics if the matrices disagree on gene count or `H > G`.
    #[must_use]
    pub fn new(
        tumor: &'a BitMatrix,
        normal: &'a BitMatrix,
        tumor_mask: Option<&'a [u64]>,
        alpha: Alpha,
        start: u64,
    ) -> Self {
        Self::build(tumor, normal, tumor_mask, alpha, start, None)
    }

    /// [`Self::new`] scanning through per-gene skip lists: partial ANDs are
    /// kept compacted and all-zero words are never touched. Bit-identical
    /// to the dense scanner (zero words contribute nothing to any AND or
    /// popcount); [`Self::words_skipped`] reports the saved word traffic.
    ///
    /// The indexes must have been built from exactly these matrices.
    ///
    /// # Panics
    /// Panics if the matrices disagree on gene count or `H > G`.
    #[must_use]
    pub fn with_skip(
        tumor: &'a BitMatrix,
        normal: &'a BitMatrix,
        tumor_mask: Option<&'a [u64]>,
        alpha: Alpha,
        start: u64,
        skip: (&'a SkipIndex, &'a SkipIndex),
    ) -> Self {
        Self::build(tumor, normal, tumor_mask, alpha, start, Some(skip))
    }

    fn build(
        tumor: &'a BitMatrix,
        normal: &'a BitMatrix,
        tumor_mask: Option<&'a [u64]>,
        alpha: Alpha,
        start: u64,
        skip: Option<(&'a SkipIndex, &'a SkipIndex)>,
    ) -> Self {
        assert_eq!(tumor.n_genes(), normal.n_genes(), "gene universes differ");
        let g = tumor.n_genes() as u32;
        assert!(H as u32 <= g, "H = {H} exceeds G = {g}");
        let sparse = skip.is_some();
        let dense_alloc = |words: usize| {
            if sparse {
                Vec::new()
            } else {
                vec![vec![0; words]; H]
            }
        };
        let sparse_idx = |words: usize| {
            if sparse {
                vec![Vec::with_capacity(words); H]
            } else {
                Vec::new()
            }
        };
        let sparse_val = |words: usize| {
            if sparse {
                vec![Vec::with_capacity(words); H]
            } else {
                Vec::new()
            }
        };
        let mut s = ComboScanner {
            tumor,
            normal,
            tumor_mask,
            alpha,
            g,
            n_normal: normal.n_samples() as u32,
            partial_t: dense_alloc(tumor.words_per_row()),
            partial_n: dense_alloc(normal.words_per_row()),
            skip,
            sp_idx_t: sparse_idx(tumor.words_per_row()),
            sp_val_t: sparse_val(tumor.words_per_row()),
            sp_idx_n: sparse_idx(normal.words_per_row()),
            sp_val_n: sparse_val(normal.words_per_row()),
            words_skipped: 0,
            pop_t: [0; H],
            pop_n: [0; H],
            combo: unrank_tuple::<H>(start),
            // Sweeping needs a fixed level-1 partial above the run; H = 1
            // has no such level, so it always steps.
            sweep_width: if H >= 2 { kernel::SWEEP_BLOCK } else { 1 },
            block_sweeps: 0,
            swept_rows: 0,
        };
        s.rebuild_from(H - 1);
        s
    }

    /// All-zero words the sparse path skipped so far (0 for dense scans).
    #[must_use]
    pub fn words_skipped(&self) -> u64 {
        self.words_skipped
    }

    /// Block-kernel invocations made so far (0 when stepping).
    #[must_use]
    pub fn block_sweeps(&self) -> u64 {
        self.block_sweeps
    }

    /// Candidate gene rows scored through the block kernel so far.
    #[must_use]
    pub fn swept_rows(&self) -> u64 {
        self.swept_rows
    }

    /// Cap the rows per level-0 block-kernel call. `width <= 1` disables the
    /// sweep (the stepping reference path); anything larger is clamped to
    /// [`kernel::SWEEP_BLOCK`]. The scanned results are bit-identical at
    /// every width.
    pub fn set_sweep_width(&mut self, width: usize) {
        let was_sweeping = self.sweep_enabled();
        self.sweep_width = if H >= 2 {
            width.clamp(1, kernel::SWEEP_BLOCK)
        } else {
            1
        };
        if was_sweeping && !self.sweep_enabled() {
            // Sweeping leaves the level-0 partial stale (it scores candidate
            // rows straight off level 1); stepping reads it, so refresh.
            self.rebuild_level(0);
        }
    }

    #[inline]
    fn sweep_enabled(&self) -> bool {
        H >= 2 && self.sweep_width > 1
    }

    /// Reposition the scanner at combination rank `start`, reusing every
    /// allocation. Equivalent to building a fresh scanner at `start` (the
    /// accumulated counters are deliberately kept — harvest them once at
    /// the end of a worker's life, not per block).
    pub fn reseek(&mut self, start: u64) {
        self.combo = unrank_tuple::<H>(start);
        self.rebuild_from(H - 1);
    }

    /// Recompute partial ANDs (and their popcounts) for levels `t..=0` after
    /// `combo[t..]` changed. While sweeping, level 0 is left untouched — the
    /// sweep scores candidate rows straight off the level-1 partial, so
    /// rebuilding the leaf would be pure waste (build and every per-block
    /// re-seek would pay it).
    fn rebuild_from(&mut self, t: usize) {
        let floor = usize::from(self.sweep_enabled());
        for level in (floor..=t).rev() {
            self.rebuild_level(level);
        }
    }

    /// Recompute one level's partial AND, assuming the level above is fresh.
    fn rebuild_level(&mut self, level: usize) {
        if self.skip.is_some() {
            self.rebuild_level_sparse(level);
            return;
        }
        let gene = self.combo[level] as usize;
        if level == H - 1 {
            let row_t = self.tumor.row(gene);
            match self.tumor_mask {
                Some(m) => {
                    self.pop_t[level] = kernel::and_store_popcount(
                        &mut self.partial_t[level],
                        row_t,
                        &m[..row_t.len()],
                    );
                }
                None => {
                    self.partial_t[level].copy_from_slice(row_t);
                    self.pop_t[level] = kernel::popcount(row_t);
                }
            }
            let row_n = self.normal.row(gene);
            self.partial_n[level].copy_from_slice(row_n);
            self.pop_n[level] = kernel::popcount(row_n);
        } else {
            let (lower_t, upper_t) = self.partial_t.split_at_mut(level + 1);
            self.pop_t[level] =
                kernel::and_store_popcount(&mut lower_t[level], self.tumor.row(gene), &upper_t[0]);
            let (lower_n, upper_n) = self.partial_n.split_at_mut(level + 1);
            self.pop_n[level] =
                kernel::and_store_popcount(&mut lower_n[level], self.normal.row(gene), &upper_n[0]);
        }
    }

    /// Sparse [`Self::rebuild_level`]: the top level seeds its compact
    /// partial from the gene's skip list (folding in the mask); lower
    /// levels AND their row into the level above's compact support via
    /// [`kernel::and_compact`], dropping words that go to zero.
    fn rebuild_level_sparse(&mut self, level: usize) {
        let gene = self.combo[level] as usize;
        let (t_skip, n_skip) = self.skip.expect("sparse rebuild without skip index");
        let wt = self.tumor.words_per_row() as u64;
        let wn = self.normal.words_per_row() as u64;
        if level == H - 1 {
            let row = self.tumor.row(gene);
            let list = t_skip.row(gene);
            let idx = &mut self.sp_idx_t[level];
            let val = &mut self.sp_val_t[level];
            idx.clear();
            val.clear();
            let mut pop = 0u32;
            match self.tumor_mask {
                Some(m) => {
                    for &wi in list {
                        let w = row[wi as usize] & m[wi as usize];
                        if w != 0 {
                            idx.push(wi);
                            val.push(w);
                            pop += w.count_ones();
                        }
                    }
                }
                None => {
                    for &wi in list {
                        let w = row[wi as usize];
                        idx.push(wi);
                        val.push(w);
                        pop += w.count_ones();
                    }
                }
            }
            self.pop_t[level] = pop;
            self.words_skipped += wt - list.len() as u64;

            let row = self.normal.row(gene);
            let list = n_skip.row(gene);
            let idx = &mut self.sp_idx_n[level];
            let val = &mut self.sp_val_n[level];
            idx.clear();
            val.clear();
            let mut pop = 0u32;
            for &wi in list {
                let w = row[wi as usize];
                idx.push(wi);
                val.push(w);
                pop += w.count_ones();
            }
            self.pop_n[level] = pop;
            self.words_skipped += wn - list.len() as u64;
        } else {
            let (lo_i, hi_i) = self.sp_idx_t.split_at_mut(level + 1);
            let (lo_v, hi_v) = self.sp_val_t.split_at_mut(level + 1);
            self.pop_t[level] = kernel::and_compact(
                &hi_i[0],
                &hi_v[0],
                self.tumor.row(gene),
                &mut lo_i[level],
                &mut lo_v[level],
            );
            self.words_skipped += wt - hi_i[0].len() as u64;

            let (lo_i, hi_i) = self.sp_idx_n.split_at_mut(level + 1);
            let (lo_v, hi_v) = self.sp_val_n.split_at_mut(level + 1);
            self.pop_n[level] = kernel::and_compact(
                &hi_i[0],
                &hi_v[0],
                self.normal.row(gene),
                &mut lo_i[level],
                &mut lo_v[level],
            );
            self.words_skipped += wn - hi_i[0].len() as u64;
        }
    }

    /// Score the current combination (O(1): popcounts are maintained by the
    /// rebuild kernel).
    #[inline]
    fn score_current(&self) -> Scored<H> {
        let tp = self.pop_t[0];
        let tn = self.n_normal - self.pop_n[0];
        Scored {
            score: self.alpha.score(tp, tn),
            tp,
            tn,
            genes: self.combo,
        }
    }

    /// Advance to the next combination in colex order. Returns `false` when
    /// the enumeration is exhausted.
    fn advance(&mut self) -> bool {
        self.advance_floor(0)
    }

    /// [`Self::advance`] rebuilding only levels `>= floor`. The block sweep
    /// passes `floor = 1`: it never reads the level-0 partial (candidate
    /// rows are scored straight off the level-1 partial), so rebuilding it
    /// would be pure waste.
    fn advance_floor(&mut self, floor: usize) -> bool {
        // Find the smallest level whose coordinate can still move up.
        for t in 0..H {
            let limit = if t + 1 < H { self.combo[t + 1] } else { self.g };
            if self.combo[t] + 1 < limit {
                self.combo[t] += 1;
                // Reset all lower coordinates to their minimal values.
                for (low, c) in self.combo.iter_mut().enumerate().take(t) {
                    *c = low as u32;
                }
                for level in (floor..=t).rev() {
                    self.rebuild_level(level);
                }
                return true;
            }
        }
        false
    }

    /// Exclusive upper end of the current level-0 sibling run: the lowest
    /// coordinate sweeps `[combo[0], combo[1])` while every higher
    /// coordinate stays fixed. Only meaningful for `H >= 2`.
    #[inline]
    fn level0_limit(&self) -> u32 {
        self.combo[1]
    }

    /// Score the next `n` level-0 siblings `combo[0], combo[0]+1, ..` against
    /// the fixed level-1 partial through the gene-tiled block kernels,
    /// feeding each [`Scored`] to `f` in ascending gene order — exactly the
    /// colex enumeration order, so `max_det`/top-K folds over the callbacks
    /// tie-break identically to stepping. Leaves `combo[0]` at the last gene
    /// swept; the level-0 partial is left stale (sweeping never reads it).
    ///
    /// `n` must be at least 1 and not overrun the run
    /// (`combo[0] + n <= combo[1]`).
    fn sweep_level0<F: FnMut(Scored<H>)>(&mut self, n: usize, mut f: F) {
        debug_assert!(H >= 2);
        debug_assert!(n >= 1 && self.combo[0] + n as u32 <= self.level0_limit());
        let lo = self.combo[0] as usize;
        let tumor = self.tumor;
        let normal = self.normal;
        let sparse = self.skip.is_some();
        // Sparse accounting: each swept candidate would have touched every
        // word of both matrices in a dense rebuild, but only the compact
        // level-1 support is read.
        let skipped_per_row = if sparse {
            (tumor.words_per_row() as u64 - self.sp_idx_t[1].len() as u64)
                + (normal.words_per_row() as u64 - self.sp_idx_n[1].len() as u64)
        } else {
            0
        };
        let mut done = 0usize;
        while done < n {
            let chunk = (n - done).min(self.sweep_width);
            let base = lo + done;
            // Stream the *next* chunk's contiguous row slab toward L1 while
            // this chunk is being scored (MemOpt row prefetching); the block
            // kernels additionally prefetch row-to-row inside the chunk.
            let next_end = (base + 2 * chunk).min(lo + n);
            if base + chunk < next_end {
                kernel::prefetch_words(tumor.rows_slab(base + chunk, next_end));
            }
            let mut rows_t: [&[u64]; kernel::SWEEP_BLOCK] = [&[]; kernel::SWEEP_BLOCK];
            let mut rows_n: [&[u64]; kernel::SWEEP_BLOCK] = [&[]; kernel::SWEEP_BLOCK];
            for r in 0..chunk {
                rows_t[r] = tumor.row(base + r);
                rows_n[r] = normal.row(base + r);
            }
            let mut out_t = [0u32; kernel::SWEEP_BLOCK];
            let mut out_n = [0u32; kernel::SWEEP_BLOCK];
            if sparse {
                kernel::and_compact_popcount_block(
                    &self.sp_idx_t[1],
                    &self.sp_val_t[1],
                    &rows_t[..chunk],
                    &mut out_t,
                );
                kernel::and_compact_popcount_block(
                    &self.sp_idx_n[1],
                    &self.sp_val_n[1],
                    &rows_n[..chunk],
                    &mut out_n,
                );
                self.words_skipped += chunk as u64 * skipped_per_row;
            } else {
                kernel::and_popcount_block(&self.partial_t[1], &rows_t[..chunk], &mut out_t);
                kernel::and_popcount_block(&self.partial_n[1], &rows_n[..chunk], &mut out_n);
            }
            self.block_sweeps += 1;
            self.swept_rows += chunk as u64;
            for r in 0..chunk {
                let mut genes = self.combo;
                genes[0] = (base + r) as u32;
                let tp = out_t[r];
                let tn = self.n_normal - out_n[r];
                f(Scored {
                    score: self.alpha.score(tp, tn),
                    tp,
                    tn,
                    genes,
                });
            }
            done += chunk;
        }
        self.combo[0] = (lo + n - 1) as u32;
    }

    /// Scan `count` combinations starting at the current position, returning
    /// the deterministic best.
    #[must_use]
    pub fn scan(&mut self, count: u64) -> Scored<H> {
        if !self.sweep_enabled() {
            return self.scan_step(count);
        }
        let mut best = Scored::NEG_INFINITY;
        let mut remaining = count;
        while remaining > 0 {
            let run = u64::from(self.level0_limit() - self.combo[0]);
            let n = run.min(remaining) as usize;
            self.sweep_level0(n, |s| best = best.max_det(s));
            remaining -= n as u64;
            if remaining == 0 || !self.advance_floor(1) {
                break;
            }
        }
        best
    }

    /// Stepping reference for [`Self::scan`] (also the `H = 1` path).
    fn scan_step(&mut self, count: u64) -> Scored<H> {
        let mut best = Scored::NEG_INFINITY;
        for step in 0..count {
            best = best.max_det(self.score_current());
            if step + 1 < count && !self.advance() {
                break;
            }
        }
        best
    }

    /// Scan `count` combinations with branch-and-bound pruning. Returns the
    /// deterministic best of `seed` and the scanned range — bit-identical to
    /// `seed.max_det(self.scan(count))`.
    ///
    /// `seed` must come from combinations that are colex-*earlier* than this
    /// range (or be `NEG_INFINITY`): a subtree is cut when its bound cannot
    /// *strictly* beat `seed`'s score, which is exact because colex-later
    /// ties lose to the incumbent under [`Scored::cmp_det`]. `shared`, when
    /// given, carries the best score seen by *any* worker; since another
    /// worker's equal-scoring combination may be colex-later than this range,
    /// the shared cut requires the bound to be strictly below it.
    pub fn scan_pruned(
        &mut self,
        count: u64,
        seed: Scored<H>,
        shared: Option<&AtomicU64>,
        stats: &mut ScanStats,
    ) -> Scored<H> {
        if !self.sweep_enabled() {
            return self.scan_pruned_step(count, seed, shared, stats);
        }
        // Level-0 siblings are never individually pruned (the rebuild loop
        // bound-checks only levels >= 1), so once the level-1 bound survives
        // the whole run [combo[0], combo[1]) is scored — as a block sweep
        // here, one step at a time in the reference. Identical either way.
        let mut best = seed;
        let mut remaining = count;
        while remaining > 0 {
            let run = u64::from(self.level0_limit() - self.combo[0]);
            let n = run.min(remaining) as usize;
            self.sweep_level0(n, |s| {
                if s.beats(&best) {
                    best = s;
                    if let Some(sh) = shared {
                        sh.fetch_max(best.score, Ordering::Relaxed);
                    }
                }
            });
            stats.scored += n as u64;
            remaining -= n as u64;
            if remaining == 0 || !self.advance_pruned(&mut remaining, &best, shared, stats, 1) {
                break;
            }
        }
        best
    }

    /// Stepping reference for [`Self::scan_pruned`] (also the `H = 1` path).
    fn scan_pruned_step(
        &mut self,
        count: u64,
        seed: Scored<H>,
        shared: Option<&AtomicU64>,
        stats: &mut ScanStats,
    ) -> Scored<H> {
        let mut best = seed;
        let mut remaining = count;
        while remaining > 0 {
            let s = self.score_current();
            stats.scored += 1;
            if s.beats(&best) {
                best = s;
                if let Some(sh) = shared {
                    sh.fetch_max(best.score, Ordering::Relaxed);
                }
            }
            remaining -= 1;
            if remaining == 0 || !self.advance_pruned(&mut remaining, &best, shared, stats, 0) {
                break;
            }
        }
        best
    }

    /// Advance to the next combination whose subtree bound survives, pruning
    /// bound-dominated subtrees along the way. Decrements `remaining` by the
    /// combinations each pruned subtree would have scored (clamped so a
    /// subtree overhanging the caller's range never over-counts). Returns
    /// `false` when the enumeration is exhausted; `remaining == 0` on return
    /// means the range ended inside a pruned subtree.
    ///
    /// `floor` is the lowest level to rebuild: 0 when stepping (the leaf
    /// partial feeds [`Self::score_current`]), 1 when block-sweeping (the
    /// sweep scores candidates straight off the level-1 partial). The bound
    /// is only ever checked at levels `>= 1`, so the cut decisions are
    /// identical for both floors.
    fn advance_pruned(
        &mut self,
        remaining: &mut u64,
        best: &Scored<H>,
        shared: Option<&AtomicU64>,
        stats: &mut ScanStats,
        floor: usize,
    ) -> bool {
        // Smallest level allowed to move; pruning at level `t` resumes the
        // colex enumeration at the first combination past the subtree, which
        // is exactly "advance at level >= t".
        let mut from = 0usize;
        'advance: loop {
            let mut moved = usize::MAX;
            for t in from..H {
                let limit = if t + 1 < H { self.combo[t + 1] } else { self.g };
                if self.combo[t] + 1 < limit {
                    self.combo[t] += 1;
                    for (low, c) in self.combo.iter_mut().enumerate().take(t) {
                        *c = low as u32;
                    }
                    moved = t;
                    break;
                }
            }
            if moved == usize::MAX {
                return false;
            }
            // Rebuild top-down, checking the F upper bound at every level
            // above the leaves. After the advance, coordinates below `level`
            // are minimal, so the C(c[level], level) combinations of the
            // subtree are exactly the next ones in colex order.
            for level in (floor..=moved).rev() {
                self.rebuild_level(level);
                if level == 0 {
                    break;
                }
                let bound = self.alpha.score(self.pop_t[level], self.n_normal);
                let cut = bound <= best.score
                    || shared.is_some_and(|sh| bound < sh.load(Ordering::Relaxed));
                if cut {
                    let subtree = binomial(u64::from(self.combo[level]), level as u64);
                    let skipped = subtree.min(*remaining);
                    stats.pruned_subtrees += 1;
                    stats.pruned_combos += skipped;
                    *remaining -= skipped;
                    if *remaining == 0 {
                        return true;
                    }
                    from = level;
                    continue 'advance;
                }
            }
            return true;
        }
    }

    /// Scan `count` combinations accumulating the top-K into `acc`, with
    /// optional branch-and-bound pruning against the accumulator's floor.
    ///
    /// The cut requires a *full* heap: with K entries, each scoring at
    /// least the floor and each colex-earlier than the subtree (this
    /// worker scans monotonically increasing ranges), every subtree
    /// member whose bound does not exceed the floor loses the entry rule
    /// to all K incumbents — so the pruned per-shard result is identical
    /// to [`crate::reduce::top_k`] over the shard. `shared`, when given,
    /// carries the highest *full-heap* floor published by any worker;
    /// since K combinations elsewhere score at least it, the shared cut
    /// is strict.
    pub fn scan_topk(
        &mut self,
        count: u64,
        acc: &mut TopK<H>,
        prune: bool,
        shared: Option<&AtomicU64>,
        stats: &mut ScanStats,
    ) {
        if !self.sweep_enabled() {
            return self.scan_topk_step(count, acc, prune, shared, stats);
        }
        let mut remaining = count;
        while remaining > 0 {
            let run = u64::from(self.level0_limit() - self.combo[0]);
            let n = run.min(remaining) as usize;
            self.sweep_level0(n, |s| {
                if acc.offer(s) && acc.is_full() {
                    if let Some(sh) = shared {
                        sh.fetch_max(acc.floor_score(), Ordering::Relaxed);
                    }
                }
            });
            stats.scored += n as u64;
            remaining -= n as u64;
            if remaining == 0 {
                break;
            }
            let more = if prune {
                self.advance_topk(&mut remaining, acc, shared, stats, 1)
            } else {
                self.advance_floor(1)
            };
            if !more {
                break;
            }
        }
    }

    /// Stepping reference for [`Self::scan_topk`] (also the `H = 1` path).
    fn scan_topk_step(
        &mut self,
        count: u64,
        acc: &mut TopK<H>,
        prune: bool,
        shared: Option<&AtomicU64>,
        stats: &mut ScanStats,
    ) {
        let mut remaining = count;
        while remaining > 0 {
            let s = self.score_current();
            stats.scored += 1;
            if acc.offer(s) && acc.is_full() {
                if let Some(sh) = shared {
                    sh.fetch_max(acc.floor_score(), Ordering::Relaxed);
                }
            }
            remaining -= 1;
            if remaining == 0 {
                break;
            }
            let more = if prune {
                self.advance_topk(&mut remaining, acc, shared, stats, 0)
            } else {
                self.advance()
            };
            if !more {
                break;
            }
        }
    }

    /// [`Self::advance_pruned`] for top-K accumulation: a subtree is cut
    /// only when the local heap is full and the bound does not beat its
    /// floor, or when the bound is strictly below the shared full-heap
    /// floor.
    fn advance_topk(
        &mut self,
        remaining: &mut u64,
        acc: &TopK<H>,
        shared: Option<&AtomicU64>,
        stats: &mut ScanStats,
        floor: usize,
    ) -> bool {
        let mut from = 0usize;
        'advance: loop {
            let mut moved = usize::MAX;
            for t in from..H {
                let limit = if t + 1 < H { self.combo[t + 1] } else { self.g };
                if self.combo[t] + 1 < limit {
                    self.combo[t] += 1;
                    for (low, c) in self.combo.iter_mut().enumerate().take(t) {
                        *c = low as u32;
                    }
                    moved = t;
                    break;
                }
            }
            if moved == usize::MAX {
                return false;
            }
            for level in (floor..=moved).rev() {
                self.rebuild_level(level);
                if level == 0 {
                    break;
                }
                let bound = self.alpha.score(self.pop_t[level], self.n_normal);
                let cut = (acc.is_full() && bound <= acc.floor_score())
                    || shared.is_some_and(|sh| bound < sh.load(Ordering::Relaxed));
                if cut {
                    let subtree = binomial(u64::from(self.combo[level]), level as u64);
                    let skipped = subtree.min(*remaining);
                    stats.pruned_subtrees += 1;
                    stats.pruned_combos += skipped;
                    *remaining -= skipped;
                    if *remaining == 0 {
                        return true;
                    }
                    from = level;
                    continue 'advance;
                }
            }
            return true;
        }
    }
}

/// Find the argmax-F combination over all `C(G,H)` candidates.
///
/// Thin wrapper over [`best_combination_stats`] for callers that do not need
/// the scan accounting.
#[must_use]
pub fn best_combination<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    tumor_mask: Option<&[u64]>,
    cfg: &GreedyConfig,
) -> Scored<H> {
    best_combination_stats(tumor, normal, tumor_mask, cfg).0
}

/// Find the argmax-F combination and report how the scan got there.
///
/// With `cfg.parallel` a [`BlockQueue`] λ-cursor hands guided-size blocks to
/// one worker per core; each worker threads its own running best through
/// consecutive (colex-ordered) blocks and publishes its best *score* to a
/// shared atomic that tightens every worker's pruning bound. Per-worker
/// winners fold with [`fold_partials`], so the result is bit-identical to
/// the sequential scan regardless of schedule, and with `cfg.prune` off it
/// is bit-identical to the exhaustive reference.
#[must_use]
pub fn best_combination_stats<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    tumor_mask: Option<&[u64]>,
    cfg: &GreedyConfig,
) -> (Scored<H>, ScanStats) {
    best_combination_seeded(tumor, normal, tumor_mask, cfg, 0)
}

/// Resolve [`GreedyConfig::sparse`] for a scan over these matrices: build
/// the per-gene skip indexes (once per scan; splicing invalidates them) and
/// keep them only when forced on or the zero-word fraction clears
/// [`SPARSE_AUTO_THRESHOLD`].
fn build_skip(
    mode: SparseMode,
    tumor: &BitMatrix,
    normal: &BitMatrix,
) -> Option<(SkipIndex, SkipIndex)> {
    if mode == SparseMode::Off {
        return None;
    }
    let ts = SkipIndex::build(tumor);
    let ns = SkipIndex::build(normal);
    let frac = (ts.zero_word_fraction() + ns.zero_word_fraction()) / 2.0;
    (mode == SparseMode::On || frac >= SPARSE_AUTO_THRESHOLD).then_some((ts, ns))
}

/// [`best_combination_stats`] with the shared pruning bound *seeded*.
///
/// `seed_score` must be a score some combination of the **current**
/// matrices actually achieves (e.g. the previous iteration's global floor
/// after rescoring) or 0: the shared cut drops subtrees whose bound is
/// strictly below it, which is exact only when a real combination
/// witnesses the seed. Seeding never changes the returned argmax — it
/// only lets the scan start hot instead of from zero.
#[must_use]
pub fn best_combination_seeded<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    tumor_mask: Option<&[u64]>,
    cfg: &GreedyConfig,
    seed_score: u64,
) -> (Scored<H>, ScanStats) {
    let g = tumor.n_genes() as u64;
    let total = binomial(g, H as u64);
    let mut stats = ScanStats::default();
    if total == 0 {
        return (Scored::NEG_INFINITY, stats);
    }
    // Never spawn more workers than there are min-grain blocks of work.
    let workers = if cfg.parallel {
        let cap = usize::try_from(total.div_ceil(par::DEFAULT_MIN_GRAIN)).unwrap_or(usize::MAX);
        par::default_workers().min(cap).max(1)
    } else {
        1
    };
    let skip = build_skip(cfg.sparse, tumor, normal);
    let make_scanner = |start: u64| {
        let mut sc = match &skip {
            Some((ts, ns)) => {
                ComboScanner::<H>::with_skip(tumor, normal, tumor_mask, cfg.alpha, start, (ts, ns))
            }
            None => ComboScanner::<H>::new(tumor, normal, tumor_mask, cfg.alpha, start),
        };
        if !cfg.block_sweep {
            sc.set_sweep_width(1);
        }
        sc
    };
    if workers == 1 {
        let mut sc = make_scanner(0);
        let best = if cfg.prune {
            let shared = (seed_score > 0).then(|| AtomicU64::new(seed_score));
            sc.scan_pruned(total, Scored::NEG_INFINITY, shared.as_ref(), &mut stats)
        } else {
            stats.scored = total;
            sc.scan(total)
        };
        stats.blocks = 1;
        stats.scanner_builds = 1;
        stats.words_skipped = sc.words_skipped();
        stats.block_sweeps = sc.block_sweeps();
        stats.swept_rows = sc.swept_rows();
        return (best, stats);
    }
    // Align λ-boundaries to the sweep chunk so block handoffs land on
    // whole sweep-kernel chunks (ragged tails only at run/range ends).
    let align = if cfg.block_sweep {
        kernel::SWEEP_BLOCK as u64
    } else {
        1
    };
    let queue = BlockQueue::with_grain_aligned(total, workers, par::DEFAULT_MIN_GRAIN, align);
    let shared = AtomicU64::new(seed_score);
    let results = par::run_workers(workers, |_| {
        let mut local = Scored::NEG_INFINITY;
        let mut st = ScanStats::default();
        // One scanner per worker, re-seeked across stolen blocks: block
        // turnover must not re-allocate the per-level partial buffers.
        let mut scanner: Option<ComboScanner<H>> = None;
        while let Some((lo, hi)) = queue.next() {
            st.blocks += 1;
            if let Some(sc) = scanner.as_mut() {
                sc.reseek(lo);
            } else {
                scanner = Some(make_scanner(lo));
                st.scanner_builds += 1;
            }
            let sc = scanner.as_mut().expect("scanner just ensured");
            if cfg.prune {
                local = sc.scan_pruned(hi - lo, local, Some(&shared), &mut st);
            } else {
                st.scored += hi - lo;
                local = local.max_det(sc.scan(hi - lo));
            }
        }
        if let Some(sc) = &scanner {
            st.words_skipped += sc.words_skipped();
            st.block_sweeps += sc.block_sweeps();
            st.swept_rows += sc.swept_rows();
        }
        if st.blocks > 0 {
            st.steals = st.blocks - 1;
        }
        (local, st)
    });
    for (_, st) in &results {
        stats.merge(st);
    }
    // Block churn must never re-allocate scanners: one build per worker.
    debug_assert!(
        stats.scanner_builds <= workers as u64,
        "{} scanner builds for {workers} workers",
        stats.scanner_builds
    );
    let best = fold_partials(results.into_iter().map(|(b, _)| b));
    (best, stats)
}

/// Full scan that also *builds* the lazy-greedy frontier: the global
/// top-`cfg.frontier_k` list (merged across workers with the same rule as
/// [`crate::reduce::merge_top_k`]) plus its K-th-score floor.
///
/// The returned argmax is bit-identical to [`best_combination_stats`]:
/// it is the head of the deterministic top-K. Pruning uses the weaker
/// full-heap-floor cut (a subtree may hold a top-K member even when it
/// cannot hold the argmax), so iteration-1 costs somewhat more than the
/// 1-best scan — the frontier pays that back on every skipped iteration.
/// `seed_floor` hot-starts the shared cut; it must be witnessed by
/// `cfg.frontier_k` current combinations (the rescored frontier's K-th
/// score qualifies) or be 0.
#[must_use]
pub fn best_combination_frontier<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    tumor_mask: Option<&[u64]>,
    cfg: &GreedyConfig,
    seed_floor: u64,
) -> (Scored<H>, ScanStats, Frontier<H>) {
    let g = tumor.n_genes() as u64;
    let total = binomial(g, H as u64);
    let k = cfg.frontier_k;
    let mut stats = ScanStats::default();
    if total == 0 {
        return (Scored::NEG_INFINITY, stats, Frontier::new(Vec::new(), 0));
    }
    let workers = if cfg.parallel {
        let cap = usize::try_from(total.div_ceil(par::DEFAULT_MIN_GRAIN)).unwrap_or(usize::MAX);
        par::default_workers().min(cap).max(1)
    } else {
        1
    };
    let skip = build_skip(cfg.sparse, tumor, normal);
    let make_scanner = |start: u64| {
        let mut sc = match &skip {
            Some((ts, ns)) => {
                ComboScanner::<H>::with_skip(tumor, normal, tumor_mask, cfg.alpha, start, (ts, ns))
            }
            None => ComboScanner::<H>::new(tumor, normal, tumor_mask, cfg.alpha, start),
        };
        if !cfg.block_sweep {
            sc.set_sweep_width(1);
        }
        sc
    };
    if workers == 1 {
        let mut acc = TopK::new(k);
        let mut sc = make_scanner(0);
        let shared = (seed_floor > 0).then(|| AtomicU64::new(seed_floor));
        sc.scan_topk(total, &mut acc, cfg.prune, shared.as_ref(), &mut stats);
        stats.blocks = 1;
        stats.scanner_builds = 1;
        stats.words_skipped = sc.words_skipped();
        stats.block_sweeps = sc.block_sweeps();
        stats.swept_rows = sc.swept_rows();
        let fr = Frontier::new(acc.into_sorted(), total);
        return (fr.best(), stats, fr);
    }
    // Align λ-boundaries to the sweep chunk so block handoffs land on
    // whole sweep-kernel chunks (ragged tails only at run/range ends).
    let align = if cfg.block_sweep {
        kernel::SWEEP_BLOCK as u64
    } else {
        1
    };
    let queue = BlockQueue::with_grain_aligned(total, workers, par::DEFAULT_MIN_GRAIN, align);
    let shared = AtomicU64::new(seed_floor);
    let results = par::run_workers(workers, |_| {
        let mut acc = TopK::new(k);
        let mut st = ScanStats::default();
        let mut scanner: Option<ComboScanner<H>> = None;
        while let Some((lo, hi)) = queue.next() {
            st.blocks += 1;
            if let Some(sc) = scanner.as_mut() {
                sc.reseek(lo);
            } else {
                scanner = Some(make_scanner(lo));
                st.scanner_builds += 1;
            }
            let sc = scanner.as_mut().expect("scanner just ensured");
            sc.scan_topk(hi - lo, &mut acc, cfg.prune, Some(&shared), &mut st);
        }
        if let Some(sc) = &scanner {
            st.words_skipped += sc.words_skipped();
            st.block_sweeps += sc.block_sweeps();
            st.swept_rows += sc.swept_rows();
        }
        if st.blocks > 0 {
            st.steals = st.blocks - 1;
        }
        (acc.into_sorted(), st)
    });
    let mut shards = Vec::with_capacity(results.len());
    for (shard, st) in results {
        stats.merge(&st);
        shards.push(shard);
    }
    debug_assert!(
        stats.scanner_builds <= workers as u64,
        "{} scanner builds for {workers} workers",
        stats.scanner_builds
    );
    let fr = Frontier::from_shards(&shards, k, total);
    (fr.best(), stats, fr)
}

/// Run the full greedy weighted-set-cover discovery for `H`-hit
/// combinations.
#[must_use]
pub fn discover<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    cfg: &GreedyConfig,
) -> GreedyResult<H> {
    discover_obs(tumor, normal, cfg, &Obs::disabled())
}

/// [`discover`] with per-iteration observability.
///
/// Emits one `greedy_iter` point per iteration (`scan_ns`, `combos_scored`,
/// `combos_per_sec`, `splice_ns`, coverage progress) plus `greedy.*`
/// counters, all under a `discover` span. With a disabled [`Obs`] the
/// instrumentation is branch-only and the selected combinations are
/// identical to [`discover`] by construction.
#[must_use]
pub fn discover_obs<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    cfg: &GreedyConfig,
    obs: &Obs,
) -> GreedyResult<H> {
    if cfg.kernelize {
        // Reduce first, run the greedy loop on the reduced instance, and
        // un-map. Bit-identical panels either way (see `crate::kernelize`).
        return crate::kernelize::discover_kernelized_obs::<H>(tumor, normal, cfg, obs);
    }
    let _run_span = obs.span("discover");
    let n_tumor = tumor.n_samples() as u32;
    let n_normal = normal.n_samples() as u32;
    let mut work_tumor = tumor.clone();
    let mut mask = tumor.full_mask();
    let mut remaining = n_tumor;
    let mut combinations = Vec::new();
    let mut iterations = Vec::new();
    // Lazy-greedy frontier, carried across iterations (see `frontier`).
    let mut frontier_state: Option<Frontier<H>> = None;

    while remaining > 0 {
        if cfg.max_combinations != 0 && combinations.len() >= cfg.max_combinations {
            break;
        }
        let iter_span = obs.span("greedy_iter");
        let mask_arg = match cfg.exclusion {
            Exclusion::BitSplice => None,
            Exclusion::Mask => Some(mask.as_slice()),
        };
        let combos_scored = binomial(work_tumor.n_genes() as u64, H as u64);
        let mut frontier_hit = false;
        let mut frontier_rescored = 0u64;
        let scan_start = Instant::now();
        let (best, scan_stats) = if cfg.frontier_k > 0 {
            // Rescore the retained top-K; a strict floor clear proves the
            // global argmax without scanning. On a miss, rebuild the
            // frontier with the shared cut seeded from the rescored K-th
            // score (witnessed by K current combinations).
            let mut seed_floor = 0u64;
            let mut hit = None;
            if let Some(fr) = frontier_state.as_ref() {
                let r = fr.rescore(&work_tumor, normal, mask_arg, cfg.alpha);
                frontier_rescored = r.rescored;
                if fr.is_hit(&r.best) {
                    frontier_hit = true;
                    hit = Some((r.best, ScanStats::default()));
                } else {
                    seed_floor = r.kth_score;
                }
            }
            match hit {
                Some(found) => found,
                None => {
                    let (best, st, fr) = best_combination_frontier::<H>(
                        &work_tumor,
                        normal,
                        mask_arg,
                        cfg,
                        seed_floor,
                    );
                    frontier_state = Some(fr);
                    (best, st)
                }
            }
        } else {
            best_combination_stats::<H>(&work_tumor, normal, mask_arg, cfg)
        };
        let scan_ns = u64::try_from(scan_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if best.tp == 0 {
            // No combination covers any remaining tumor sample: stall.
            drop(iter_span);
            break;
        }
        let newly = best.tp;
        remaining -= newly;
        let words = work_tumor.words_per_row();
        let splice_start = Instant::now();
        let mut splice_words = 0u64;
        match cfg.exclusion {
            Exclusion::BitSplice => {
                let cov = work_tumor.cover_mask(&best.genes);
                let mut keep = work_tumor.full_mask();
                for (k, c) in keep.iter_mut().zip(cov.iter()) {
                    *k &= !c;
                }
                splice_words = work_tumor.splice_words_written(&keep);
                work_tumor = work_tumor.splice_columns(&keep);
            }
            Exclusion::Mask => {
                let cov = work_tumor.cover_mask(&best.genes);
                for (m, c) in mask.iter_mut().zip(cov.iter()) {
                    *m &= !c;
                }
            }
        }
        let splice_ns = u64::try_from(splice_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if obs.is_enabled() {
            let combos_per_sec = if scan_ns == 0 {
                0.0
            } else {
                combos_scored as f64 / (scan_ns as f64 / 1e9)
            };
            obs.point(
                "greedy_iter",
                &[
                    ("iter", iterations.len().into()),
                    ("scan_ns", scan_ns.into()),
                    ("combos_scored", combos_scored.into()),
                    ("combos_per_sec", combos_per_sec.into()),
                    ("exclusion", cfg.exclusion.name().into()),
                    ("splice_ns", splice_ns.into()),
                    ("splice_words", splice_words.into()),
                    ("newly_covered", u64::from(newly).into()),
                    ("remaining", u64::from(remaining).into()),
                    ("words_per_row", words.into()),
                    ("scan_scored", scan_stats.scored.into()),
                    ("pruned_combos", scan_stats.pruned_combos.into()),
                    ("pruned_subtrees", scan_stats.pruned_subtrees.into()),
                    ("steal_blocks", scan_stats.blocks.into()),
                    ("steals", scan_stats.steals.into()),
                    ("frontier_hit", u64::from(frontier_hit).into()),
                    ("frontier_rescored", frontier_rescored.into()),
                    ("words_skipped", scan_stats.words_skipped.into()),
                    ("block_sweeps", scan_stats.block_sweeps.into()),
                    ("swept_rows", scan_stats.swept_rows.into()),
                    ("kernel", kernel::active().name().into()),
                ],
            );
            obs.counter_add("greedy.iterations", 1);
            obs.counter_add("greedy.frontier_hits", u64::from(frontier_hit));
            obs.counter_add("greedy.frontier_rescored", frontier_rescored);
            obs.counter_add("greedy.full_rescans", u64::from(!frontier_hit));
            obs.counter_add("greedy.combos_scored", combos_scored);
            obs.counter_add("greedy.scan_scored", scan_stats.scored);
            obs.counter_add("greedy.pruned_combos", scan_stats.pruned_combos);
            obs.counter_add("greedy.pruned_subtrees", scan_stats.pruned_subtrees);
            obs.counter_add("greedy.steal_blocks", scan_stats.blocks);
            obs.counter_add("greedy.steals", scan_stats.steals);
            obs.counter_add("greedy.words_skipped", scan_stats.words_skipped);
            obs.counter_add("greedy.block_sweeps", scan_stats.block_sweeps);
            obs.counter_add("greedy.swept_rows", scan_stats.swept_rows);
            obs.counter_add(
                match kernel::active() {
                    kernel::Dispatch::Scalar => "greedy.dispatch_scalar",
                    kernel::Dispatch::Avx2 => "greedy.dispatch_avx2",
                    kernel::Dispatch::Avx512 => "greedy.dispatch_avx512",
                },
                1,
            );
            obs.counter_add("greedy.scan_ns", scan_ns);
            obs.counter_add("greedy.splice_ns", splice_ns);
            obs.counter_add("greedy.splice_words", splice_words);
        }
        drop(iter_span);
        iterations.push(IterationRecord {
            best,
            f: best.f_value(cfg.alpha, n_tumor, n_normal),
            newly_covered: newly,
            remaining,
            words_per_row: words,
        });
        combinations.push(best.genes);
    }

    GreedyResult {
        combinations,
        iterations,
        uncovered: remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::score_combo;

    fn lcg_matrices(g: usize, nt: usize, nn: usize, seed: u64) -> (BitMatrix, BitMatrix) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = BitMatrix::zeros(g, nt);
        let mut n = BitMatrix::zeros(g, nn);
        for gene in 0..g {
            for s in 0..nt {
                if next() % 2 == 0 {
                    t.set(gene, s, true);
                }
            }
            for s in 0..nn {
                if next() % 6 == 0 {
                    n.set(gene, s, true);
                }
            }
        }
        (t, n)
    }

    fn brute_best<const H: usize>(t: &BitMatrix, n: &BitMatrix, mask: Option<&[u64]>) -> Scored<H> {
        let g = t.n_genes() as u64;
        let mut best = Scored::NEG_INFINITY;
        for l in 0..binomial(g, H as u64) {
            let genes = unrank_tuple::<H>(l);
            let mut s = score_combo(t, n, &genes, Alpha::PAPER);
            if let Some(m) = mask {
                // Recount TP under the mask.
                let cov = t.cover_mask(&genes);
                let tp: u32 = cov.iter().zip(m).map(|(c, mm)| (c & mm).count_ones()).sum();
                s = Scored {
                    score: Alpha::PAPER.score(tp, s.tn),
                    tp,
                    tn: s.tn,
                    genes,
                };
            }
            best = best.max_det(s);
        }
        best
    }

    #[test]
    fn scanner_matches_brute_force_h2_h3_h4() {
        let (t, n) = lcg_matrices(11, 100, 60, 5);
        let cfg = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        assert_eq!(
            best_combination::<2>(&t, &n, None, &cfg),
            brute_best::<2>(&t, &n, None)
        );
        assert_eq!(
            best_combination::<3>(&t, &n, None, &cfg),
            brute_best::<3>(&t, &n, None)
        );
        assert_eq!(
            best_combination::<4>(&t, &n, None, &cfg),
            brute_best::<4>(&t, &n, None)
        );
    }

    #[test]
    fn parallel_equals_sequential() {
        let (t, n) = lcg_matrices(13, 128, 64, 21);
        let seq = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        let par = GreedyConfig {
            parallel: true,
            ..GreedyConfig::default()
        };
        for _ in 0..2 {
            assert_eq!(
                best_combination::<3>(&t, &n, None, &par),
                best_combination::<3>(&t, &n, None, &seq)
            );
        }
    }

    #[test]
    fn scanner_respects_mask() {
        let (t, n) = lcg_matrices(9, 70, 40, 2);
        // Mask off the first word of samples.
        let mut mask = t.full_mask();
        mask[0] = 0;
        let cfg = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        let got = best_combination::<2>(&t, &n, Some(&mask), &cfg);
        assert_eq!(got, brute_best::<2>(&t, &n, Some(&mask)));
    }

    #[test]
    fn scanner_chunked_start_positions() {
        // Starting mid-range must continue the same enumeration.
        let (t, n) = lcg_matrices(10, 64, 32, 8);
        let total = binomial(10, 3);
        let mut full = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
        let whole = full.scan(total);
        let mut a = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
        let first = a.scan(total / 2);
        let mut b = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, total / 2);
        let second = b.scan(total - total / 2);
        assert_eq!(first.max_det(second), whole);
    }

    #[test]
    fn sparse_scan_is_bit_identical_to_dense() {
        use crate::bitmat::SkipIndex;
        for seed in [4u64, 19, 73] {
            let (t, n) = lcg_matrices(12, 200, 130, seed);
            let total = binomial(12, 3);
            let ts = SkipIndex::build(&t);
            let ns = SkipIndex::build(&n);
            let mut dense = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
            let mut sparse =
                ComboScanner::<3>::with_skip(&t, &n, None, Alpha::PAPER, 0, (&ts, &ns));
            assert_eq!(sparse.scan(total), dense.scan(total));
            // Under a mask too.
            let mut mask = t.full_mask();
            mask[0] &= 0x0f0f_0f0f_0f0f_0f0f;
            let mut dense = ComboScanner::<3>::new(&t, &n, Some(&mask), Alpha::PAPER, 0);
            let mut sparse =
                ComboScanner::<3>::with_skip(&t, &n, Some(&mask), Alpha::PAPER, 0, (&ts, &ns));
            assert_eq!(sparse.scan(total), dense.scan(total));
        }
    }

    #[test]
    fn sparse_mode_on_matches_off_end_to_end() {
        let (t, n) = lcg_matrices(14, 150, 90, 33);
        let base = GreedyConfig {
            parallel: false,
            sparse: SparseMode::Off,
            ..GreedyConfig::default()
        };
        let on = GreedyConfig {
            sparse: SparseMode::On,
            ..base
        };
        let want = discover::<3>(&t, &n, &base);
        let got = discover::<3>(&t, &n, &on);
        assert_eq!(want.combinations, got.combinations);
        assert_eq!(want.uncovered, got.uncovered);
        // On a genuinely sparse input the sparse path must skip zero words
        // (and Auto must pick it up).
        let mut st = BitMatrix::zeros(8, 640);
        let mut sn = BitMatrix::zeros(8, 640);
        for g in 0..8 {
            st.set(g, g * 70, true);
            st.set(g, g * 70 + 3, true);
            sn.set(g, 639 - g, true);
        }
        let auto = GreedyConfig {
            sparse: SparseMode::Auto,
            ..base
        };
        let (_, stats) = best_combination_stats::<3>(&st, &sn, None, &auto);
        assert!(stats.words_skipped > 0, "stats: {stats:?}");
    }

    #[test]
    fn pruned_scan_is_bit_identical_to_unpruned() {
        for seed in [3u64, 17, 99] {
            let (t, n) = lcg_matrices(12, 120, 60, seed);
            let unpruned = GreedyConfig {
                parallel: false,
                prune: false,
                ..GreedyConfig::default()
            };
            let pruned = GreedyConfig {
                parallel: false,
                prune: true,
                ..GreedyConfig::default()
            };
            let (want, base) = best_combination_stats::<3>(&t, &n, None, &unpruned);
            let (got, st) = best_combination_stats::<3>(&t, &n, None, &pruned);
            assert_eq!(got, want);
            // Pruning must account for every enumerated combination exactly.
            assert_eq!(st.scored + st.pruned_combos, base.scored);
        }
    }

    #[test]
    fn pruned_scan_identical_under_mask() {
        let (t, n) = lcg_matrices(10, 90, 45, 41);
        let mut mask = t.full_mask();
        mask[0] &= 0x00ff_00ff_00ff_00ff;
        let unpruned = GreedyConfig {
            parallel: false,
            prune: false,
            ..GreedyConfig::default()
        };
        let pruned = GreedyConfig {
            parallel: false,
            prune: true,
            ..GreedyConfig::default()
        };
        assert_eq!(
            best_combination::<3>(&t, &n, Some(&mask), &pruned),
            best_combination::<3>(&t, &n, Some(&mask), &unpruned)
        );
    }

    #[test]
    fn pruned_scan_handles_all_zero_tumor() {
        // Every combination has TP = 0, so every subtree bound is 0 and the
        // scan prunes to a single scored combination — which must still be
        // the colex-first one the unpruned scan returns by tie-break.
        let t = BitMatrix::zeros(8, 50);
        let (_, n) = lcg_matrices(8, 50, 30, 7);
        let unpruned = GreedyConfig {
            parallel: false,
            prune: false,
            ..GreedyConfig::default()
        };
        let pruned = GreedyConfig {
            parallel: false,
            prune: true,
            ..GreedyConfig::default()
        };
        let want = best_combination::<3>(&t, &n, None, &unpruned);
        let (got, st) = best_combination_stats::<3>(&t, &n, None, &pruned);
        assert_eq!(got, want);
        assert_eq!(got.genes, [0, 1, 2]);
        assert_eq!(st.scored, 1, "everything after the first combo prunes");
    }

    #[test]
    fn pruned_scan_range_splits_compose() {
        // scan_pruned over [0, k) and [k, total) with threaded seed must
        // equal one scan over [0, total): the block-queue contract.
        let (t, n) = lcg_matrices(11, 80, 40, 23);
        let total = binomial(11, 3);
        let mut stats = ScanStats::default();
        let mut whole = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
        let want = whole.scan_pruned(total, Scored::NEG_INFINITY, None, &mut stats);
        for k in [1, 7, total / 3, total / 2, total - 1] {
            let mut st = ScanStats::default();
            let mut a = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
            let first = a.scan_pruned(k, Scored::NEG_INFINITY, None, &mut st);
            let mut b = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, k);
            let got = b.scan_pruned(total - k, first, None, &mut st);
            assert_eq!(got, want, "split at {k}");
            assert_eq!(st.scored + st.pruned_combos, total);
        }
    }

    #[test]
    fn parallel_pruned_equals_sequential_unpruned() {
        let (t, n) = lcg_matrices(13, 128, 64, 55);
        let reference = GreedyConfig {
            parallel: false,
            prune: false,
            ..GreedyConfig::default()
        };
        let accelerated = GreedyConfig {
            parallel: true,
            prune: true,
            ..GreedyConfig::default()
        };
        let want = best_combination::<3>(&t, &n, None, &reference);
        for _ in 0..3 {
            assert_eq!(best_combination::<3>(&t, &n, None, &accelerated), want);
        }
    }

    #[test]
    fn discover_agrees_across_all_scan_modes() {
        let (t, n) = lcg_matrices(10, 150, 80, 61);
        let reference = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                prune: false,
                ..GreedyConfig::default()
            },
        );
        for parallel in [false, true] {
            for exclusion in [Exclusion::BitSplice, Exclusion::Mask] {
                let got = discover::<2>(
                    &t,
                    &n,
                    &GreedyConfig {
                        parallel,
                        prune: true,
                        exclusion,
                        ..GreedyConfig::default()
                    },
                );
                assert_eq!(got.combinations, reference.combinations);
                assert_eq!(got.uncovered, reference.uncovered);
            }
        }
    }

    #[test]
    fn greedy_covers_all_tumors_on_easy_data() {
        // Plant two 2-hit combos that jointly cover everything.
        let mut t = BitMatrix::zeros(6, 80);
        let mut n = BitMatrix::zeros(6, 40);
        for s in 0..40 {
            t.set(0, s, true);
            t.set(1, s, true);
        }
        for s in 40..80 {
            t.set(2, s, true);
            t.set(3, s, true);
        }
        // Sprinkle normals with singleton mutations only.
        for s in 0..40 {
            n.set(4, s % 40, true);
        }
        let res = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(res.uncovered, 0);
        assert_eq!(res.combinations.len(), 2);
        let set: std::collections::HashSet<_> = res.combinations.iter().copied().collect();
        assert!(set.contains(&[0, 1]) && set.contains(&[2, 3]));
        assert!((res.coverage(80) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn splice_and_mask_modes_select_identical_combinations() {
        let (t, n) = lcg_matrices(10, 150, 80, 33);
        let a = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                exclusion: Exclusion::BitSplice,
                parallel: false,
                ..Default::default()
            },
        );
        let b = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                exclusion: Exclusion::Mask,
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(a.combinations, b.combinations);
        assert_eq!(a.uncovered, b.uncovered);
        // Splicing shrinks rows over iterations; masking never does.
        let spliced_words: Vec<_> = a.iterations.iter().map(|r| r.words_per_row).collect();
        let masked_words: Vec<_> = b.iterations.iter().map(|r| r.words_per_row).collect();
        assert!(spliced_words.last().unwrap() <= spliced_words.first().unwrap());
        assert!(masked_words.iter().all(|&w| w == masked_words[0]));
    }

    #[test]
    fn greedy_iteration_records_are_consistent() {
        let (t, n) = lcg_matrices(8, 100, 50, 12);
        let res = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let mut covered = 0u32;
        for rec in &res.iterations {
            covered += rec.newly_covered;
            assert_eq!(rec.remaining, 100 - covered);
            assert!(rec.newly_covered > 0);
            assert!(rec.f > 0.0);
        }
        assert_eq!(res.uncovered, 100 - covered);
    }

    #[test]
    fn max_combinations_caps_the_run() {
        let (t, n) = lcg_matrices(8, 200, 50, 90);
        let res = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                max_combinations: 1,
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(res.combinations.len(), 1);
    }

    #[test]
    fn frontier_scan_matches_stats_scan_and_brute_top_k() {
        use crate::reduce::top_k;
        for (k, seed) in [(1usize, 3u64), (4, 17), (64, 99)] {
            let (t, n) = lcg_matrices(12, 120, 60, seed);
            let cfg = GreedyConfig {
                parallel: false,
                frontier_k: k,
                ..GreedyConfig::default()
            };
            let (want, _) = best_combination_stats::<3>(&t, &n, None, &cfg);
            let (got, st, fr) = best_combination_frontier::<3>(&t, &n, None, &cfg, 0);
            assert_eq!(got, want, "k={k}");
            assert_eq!(fr.best(), want, "k={k}");
            // The pruned top-K scan must still account for every combination.
            let total = binomial(12, 3);
            assert_eq!(st.scored + st.pruned_combos, total, "k={k}");
            // And the retained entries are the exhaustive top-K.
            let all: Vec<Scored<3>> = (0..total)
                .map(|l| score_combo(&t, &n, &unrank_tuple::<3>(l), Alpha::PAPER))
                .collect();
            assert_eq!(fr.entries(), &top_k(&all, k)[..], "k={k}");
        }
    }

    #[test]
    fn frontier_scan_parallel_equals_sequential() {
        let (t, n) = lcg_matrices(13, 128, 64, 31);
        for k in [1usize, 8, 64] {
            let seq = GreedyConfig {
                parallel: false,
                frontier_k: k,
                ..GreedyConfig::default()
            };
            let par = GreedyConfig {
                parallel: true,
                frontier_k: k,
                ..GreedyConfig::default()
            };
            let (wb, _, wf) = best_combination_frontier::<3>(&t, &n, None, &seq, 0);
            for _ in 0..2 {
                let (gb, _, gf) = best_combination_frontier::<3>(&t, &n, None, &par, 0);
                assert_eq!(gb, wb, "k={k}");
                assert_eq!(gf.entries(), wf.entries(), "k={k}");
                assert_eq!(gf.floor(), wf.floor(), "k={k}");
            }
        }
    }

    #[test]
    fn seeded_scan_matches_unseeded() {
        let (t, n) = lcg_matrices(12, 100, 50, 47);
        let cfg = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        let (want, _) = best_combination_stats::<3>(&t, &n, None, &cfg);
        // Any achieved score is a sound seed, including the argmax's own.
        let weaker = score_combo(&t, &n, &[0, 1, 2], Alpha::PAPER);
        for seed in [0, weaker.score, want.score] {
            let (got, _) = best_combination_seeded::<3>(&t, &n, None, &cfg, seed);
            assert_eq!(got, want, "seed={seed}");
        }
        let par = GreedyConfig {
            parallel: true,
            ..GreedyConfig::default()
        };
        let (got, _) = best_combination_seeded::<3>(&t, &n, None, &par, want.score);
        assert_eq!(got, want);
    }

    #[test]
    fn frontier_discovery_is_bit_identical_to_disabled() {
        let (t, n) = lcg_matrices(10, 150, 80, 61);
        for exclusion in [Exclusion::BitSplice, Exclusion::Mask] {
            let reference = discover::<2>(
                &t,
                &n,
                &GreedyConfig {
                    parallel: false,
                    frontier_k: 0,
                    exclusion,
                    ..GreedyConfig::default()
                },
            );
            for k in [1usize, 4, 64] {
                for parallel in [false, true] {
                    let got = discover::<2>(
                        &t,
                        &n,
                        &GreedyConfig {
                            parallel,
                            frontier_k: k,
                            exclusion,
                            ..GreedyConfig::default()
                        },
                    );
                    assert_eq!(
                        got.combinations, reference.combinations,
                        "k={k} parallel={parallel} {exclusion:?}"
                    );
                    assert_eq!(got.uncovered, reference.uncovered);
                }
            }
        }
    }

    #[test]
    fn frontier_counters_track_hits_and_misses() {
        let (t, n) = lcg_matrices(9, 140, 70, 13);
        // K = 1: the floor equals the old max, a rescored member can never
        // strictly clear it, so every iteration past the first must be a
        // full rescan (the fallback path fires).
        let obs = Obs::enabled();
        let res = discover_obs::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                frontier_k: 1,
                ..GreedyConfig::default()
            },
            &obs,
        );
        let c = obs.counters();
        let iters = res.iterations.len() as u64;
        assert!(iters >= 2, "need a multi-iteration run");
        assert_eq!(c.get("greedy.frontier_hits").copied(), Some(0));
        assert_eq!(c.get("greedy.full_rescans").copied(), Some(iters));
        assert_eq!(c.get("greedy.frontier_rescored").copied(), Some(iters - 1));

        // K ≥ C(G,2): the frontier is complete after iteration 1 and every
        // later iteration is a hit with zero scan work.
        let obs = Obs::enabled();
        let res = discover_obs::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                frontier_k: binomial(9, 2) as usize,
                ..GreedyConfig::default()
            },
            &obs,
        );
        let c = obs.counters();
        let iters = res.iterations.len() as u64;
        assert_eq!(c.get("greedy.frontier_hits").copied(), Some(iters - 1));
        assert_eq!(c.get("greedy.full_rescans").copied(), Some(1));
        let hit_iters: Vec<_> = obs
            .events()
            .iter()
            .filter(|e| e.name == "greedy_iter" && e.u64("frontier_hit") == Some(1))
            .map(|e| e.u64("scan_scored").unwrap())
            .collect();
        assert_eq!(hit_iters.len() as u64, iters - 1);
        assert!(hit_iters.iter().all(|&s| s == 0), "hits must not scan");
    }

    #[test]
    fn block_sweep_matches_stepping_every_width() {
        use crate::bitmat::SkipIndex;
        let (t, n) = lcg_matrices(13, 120, 60, 9);
        let total = binomial(13, 3);
        let ts = SkipIndex::build(&t);
        let ns = SkipIndex::build(&n);
        let mut mask = t.full_mask();
        mask[0] &= 0x0ff0_0ff0_0ff0_0ff0;
        for masked in [None, Some(&mask)] {
            for sparse in [false, true] {
                let build = |start: u64| {
                    let m = masked.map(|m| &m[..]);
                    if sparse {
                        ComboScanner::<3>::with_skip(&t, &n, m, Alpha::PAPER, start, (&ts, &ns))
                    } else {
                        ComboScanner::<3>::new(&t, &n, m, Alpha::PAPER, start)
                    }
                };
                // Stepping reference.
                let mut reference = build(0);
                reference.set_sweep_width(1);
                let want = reference.scan(total);
                assert_eq!(reference.block_sweeps(), 0);
                // Widths that do and do not divide typical run lengths.
                for width in [2usize, 3, 5, kernel::SWEEP_BLOCK] {
                    let mut sc = build(0);
                    sc.set_sweep_width(width);
                    assert_eq!(sc.scan(total), want, "width={width} sparse={sparse}");
                    assert!(sc.block_sweeps() > 0, "sweep never engaged");
                    assert_eq!(sc.swept_rows(), total, "every combo swept");
                    // Pruned sweep: same winner, exact accounting.
                    let mut st = ScanStats::default();
                    let mut sc = build(0);
                    sc.set_sweep_width(width);
                    let got = sc.scan_pruned(total, Scored::NEG_INFINITY, None, &mut st);
                    assert_eq!(got, want, "pruned width={width} sparse={sparse}");
                    assert_eq!(st.scored + st.pruned_combos, total);
                    assert_eq!(sc.swept_rows(), st.scored, "every scored combo swept");
                    // Mid-range start (scanner begins inside a run).
                    let k = total / 3 + 1;
                    let mut a = build(0);
                    a.set_sweep_width(width);
                    let first = a.scan(k);
                    let mut b = build(k);
                    b.set_sweep_width(width);
                    let second = b.scan(total - k);
                    assert_eq!(first.max_det(second), want, "split width={width}");
                }
            }
        }
    }

    #[test]
    fn block_sweep_sparse_words_skipped_matches_stepping() {
        use crate::bitmat::SkipIndex;
        // Sparse input so the skip lists actually drop words.
        let mut t = BitMatrix::zeros(10, 640);
        let mut n = BitMatrix::zeros(10, 640);
        for g in 0..10 {
            t.set(g, g * 60, true);
            t.set(g, g * 60 + 7, true);
            n.set(g, 639 - g, true);
        }
        let ts = SkipIndex::build(&t);
        let ns = SkipIndex::build(&n);
        let total = binomial(10, 3);
        let mut step = ComboScanner::<3>::with_skip(&t, &n, None, Alpha::PAPER, 0, (&ts, &ns));
        step.set_sweep_width(1);
        let want = step.scan(total);
        let mut swept = ComboScanner::<3>::with_skip(&t, &n, None, Alpha::PAPER, 0, (&ts, &ns));
        swept.set_sweep_width(kernel::SWEEP_BLOCK);
        assert_eq!(swept.scan(total), want);
        // Same per-combo accounting: every level-0 candidate charges the full
        // dense width minus the level-1 support, in both modes.
        assert_eq!(swept.words_skipped(), step.words_skipped());
    }

    #[test]
    fn block_sweep_topk_matches_stepping() {
        let (t, n) = lcg_matrices(12, 110, 55, 71);
        let total = binomial(12, 3);
        for k in [1usize, 8, 64] {
            for prune in [false, true] {
                let mut want = TopK::new(k);
                let mut st = ScanStats::default();
                let mut sc = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
                sc.set_sweep_width(1);
                sc.scan_topk(total, &mut want, prune, None, &mut st);
                let mut got = TopK::new(k);
                let mut st2 = ScanStats::default();
                let mut sc = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
                sc.set_sweep_width(kernel::SWEEP_BLOCK);
                sc.scan_topk(total, &mut got, prune, None, &mut st2);
                assert_eq!(got.into_sorted(), want.into_sorted(), "k={k} prune={prune}");
                assert_eq!(st2.scored + st2.pruned_combos, total);
            }
        }
    }

    #[test]
    fn block_sweep_discovery_bit_identical_across_modes() {
        let (t, n) = lcg_matrices(11, 150, 80, 29);
        for exclusion in [Exclusion::BitSplice, Exclusion::Mask] {
            let reference = discover::<3>(
                &t,
                &n,
                &GreedyConfig {
                    parallel: false,
                    block_sweep: false,
                    exclusion,
                    ..GreedyConfig::default()
                },
            );
            for parallel in [false, true] {
                let got = discover::<3>(
                    &t,
                    &n,
                    &GreedyConfig {
                        parallel,
                        block_sweep: true,
                        exclusion,
                        ..GreedyConfig::default()
                    },
                );
                assert_eq!(
                    got.combinations, reference.combinations,
                    "parallel={parallel} {exclusion:?}"
                );
                assert_eq!(got.uncovered, reference.uncovered);
            }
        }
    }

    #[test]
    fn reseek_reuses_allocations_and_matches_fresh_build() {
        let (t, n) = lcg_matrices(12, 100, 50, 83);
        let total = binomial(12, 3);
        let k = total / 2;
        let mut reused = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, 0);
        let _ = reused.scan(k);
        let bufs_before: Vec<*const u64> = reused.partial_t.iter().map(|b| b.as_ptr()).collect();
        reused.reseek(k);
        let bufs_after: Vec<*const u64> = reused.partial_t.iter().map(|b| b.as_ptr()).collect();
        assert_eq!(bufs_before, bufs_after, "reseek must not re-allocate");
        let mut fresh = ComboScanner::<3>::new(&t, &n, None, Alpha::PAPER, k);
        assert_eq!(reused.scan(total - k), fresh.scan(total - k));
    }

    #[test]
    fn workers_build_at_most_one_scanner_each() {
        let (t, n) = lcg_matrices(40, 90, 45, 3);
        let cfg = GreedyConfig {
            parallel: true,
            prune: false,
            ..GreedyConfig::default()
        };
        let total = binomial(40, 3);
        let workers = par::default_workers()
            .min(usize::try_from(total.div_ceil(par::DEFAULT_MIN_GRAIN)).unwrap())
            .max(1);
        let (_, st) = best_combination_stats::<3>(&t, &n, None, &cfg);
        assert!(st.blocks >= 1);
        assert!(st.scanner_builds >= 1);
        assert!(
            st.scanner_builds <= workers as u64,
            "scan built {} scanners for {workers} workers ({} blocks)",
            st.scanner_builds,
            st.blocks
        );
    }

    #[test]
    fn scan_stats_merge_covers_every_counter() {
        let a = ScanStats {
            scored: 1,
            pruned_subtrees: 2,
            pruned_combos: 3,
            blocks: 4,
            steals: 5,
            words_skipped: 6,
            block_sweeps: 7,
            swept_rows: 8,
            scanner_builds: 9,
        };
        let mut m = a;
        m.merge(&a);
        assert_eq!(
            m,
            ScanStats {
                scored: 2,
                pruned_subtrees: 4,
                pruned_combos: 6,
                blocks: 8,
                steals: 10,
                words_skipped: 12,
                block_sweeps: 14,
                swept_rows: 16,
                scanner_builds: 18,
            }
        );
        assert!((m.rows_per_sweep() - 16.0 / 14.0).abs() < 1e-12);
        assert_eq!(ScanStats::default().rows_per_sweep(), 0.0);
    }

    #[test]
    fn greedy_f_is_nonincreasing() {
        // Each iteration's F (on the shrinking tumor set) cannot beat the
        // previous pick's F: the previous argmax dominated the same pool plus
        // covered samples.
        let (t, n) = lcg_matrices(9, 120, 60, 77);
        let res = discover::<2>(
            &t,
            &n,
            &GreedyConfig {
                parallel: false,
                ..Default::default()
            },
        );
        for w in res.iterations.windows(2) {
            assert!(w[1].f <= w[0].f + 1e-12);
        }
    }
}
