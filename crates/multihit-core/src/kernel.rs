//! Vectorized fused AND+popcount scoring kernels with runtime dispatch.
//!
//! Every hot path in the pipeline bottoms out in the same primitive: AND a
//! handful of 64-sample packed words together and count the surviving bits.
//! The portable implementations here unroll that primitive over four words
//! with independent accumulators (so the popcounts pipeline instead of
//! serializing on one add chain); on `x86_64` a runtime check
//! (`is_x86_feature_detected!`) swaps in an AVX2/POPCNT path that ANDs
//! 256 bits per instruction and lowers `count_ones` to the single-cycle
//! `POPCNT` instruction — which the default `x86-64` baseline target does
//! *not* emit, so the dispatch is a real constant-factor win even on the
//! scalar-looking loop. Column splicing gets the same treatment via BMI2
//! `PEXT` (single-instruction bit compaction per word).
//!
//! Above AVX2 sits an AVX-512 tier (`avx512f` + `avx512vpopcntdq`): 512-bit
//! ANDs with the `VPOPCNTQ` instruction counting eight words per cycle in
//! vector registers, no lane extraction at all. The block kernels
//! ([`and_popcount_block`]) score a whole block of candidate rows against
//! one fixed partial — the partial stays register/L1-resident while the
//! rows stream past it, with software prefetch of the upcoming row (the
//! CPU analogue of the paper's MemOpt row prefetching).
//!
//! Dispatch is decided once per process and cached; [`force_scalar`] and
//! [`force`] pin a tier so tests and benches can compare implementations on
//! the same machine. All tiers are bit-identical by construction and
//! proptested against each other on ragged widths, including the partial
//! final word.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation the runtime dispatch selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dispatch {
    /// Portable unrolled Rust (also the forced-test path).
    Scalar,
    /// AVX2 AND + POPCNT counting (+ BMI2 PEXT splicing) on `x86_64`.
    Avx2,
    /// AVX-512F AND + VPOPCNTQ vector popcount on `x86_64`.
    Avx512,
}

impl Dispatch {
    /// Stable name used in metric streams and bench reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Avx2 => "avx2",
            Dispatch::Avx512 => "avx512",
        }
    }
}

/// 0 = undecided, 1 = scalar, 2 = avx2, 3 = avx512.
static SELECTED: AtomicU8 = AtomicU8::new(0);

fn encode(d: Dispatch) -> u8 {
    match d {
        Dispatch::Scalar => 1,
        Dispatch::Avx2 => 2,
        Dispatch::Avx512 => 3,
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Dispatch {
    let avx2 = std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("popcnt")
        && std::arch::is_x86_feature_detected!("bmi2");
    if avx2
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
    {
        Dispatch::Avx512
    } else if avx2 {
        Dispatch::Avx2
    } else {
        Dispatch::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> Dispatch {
    Dispatch::Scalar
}

/// The implementation the process is currently dispatching to.
#[must_use]
pub fn active() -> Dispatch {
    match SELECTED.load(Ordering::Relaxed) {
        1 => Dispatch::Scalar,
        2 => Dispatch::Avx2,
        3 => Dispatch::Avx512,
        _ => {
            let d = detect();
            SELECTED.store(encode(d), Ordering::Relaxed);
            d
        }
    }
}

/// Pin a specific dispatch tier process-wide, or re-run detection.
///
/// Returns `false` (leaving the selection unchanged) when the requested
/// tier is *above* what the host supports — forcing AVX-512 on a machine
/// without it would execute illegal instructions. Pinning a tier at or
/// below the detected one always succeeds; `force(None)` re-runs detection
/// and always succeeds. For tests and benches comparing implementations;
/// production code never calls this.
pub fn force(d: Option<Dispatch>) -> bool {
    match d {
        None => {
            SELECTED.store(encode(detect()), Ordering::Relaxed);
            true
        }
        Some(want) => {
            if want > detect() {
                return false;
            }
            SELECTED.store(encode(want), Ordering::Relaxed);
            true
        }
    }
}

/// Pin (or unpin) the portable scalar path, process-wide.
///
/// For tests and benches comparing implementations; production code never
/// calls this. `force_scalar(false)` re-runs detection.
pub fn force_scalar(on: bool) {
    let _ = force(on.then_some(Dispatch::Scalar));
}

// ---------------------------------------------------------------------------
// Portable unrolled implementations
// ---------------------------------------------------------------------------

/// Population count of a packed word slice (4-way unrolled).
#[must_use]
pub fn popcount_scalar(a: &[u64]) -> u32 {
    let mut acc = [0u32; 4];
    let mut chunks = a.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += c[0].count_ones();
        acc[1] += c[1].count_ones();
        acc[2] += c[2].count_ones();
        acc[3] += c[3].count_ones();
    }
    let tail: u32 = chunks.remainder().iter().map(|w| w.count_ones()).sum();
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Fused `popcount(a & b)` without materializing the AND (4-way unrolled).
#[must_use]
pub fn and_popcount_scalar(a: &[u64], b: &[u64]) -> u32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0u32; 4];
    let mut i = 0;
    while i + 4 <= n {
        acc[0] += (a[i] & b[i]).count_ones();
        acc[1] += (a[i + 1] & b[i + 1]).count_ones();
        acc[2] += (a[i + 2] & b[i + 2]).count_ones();
        acc[3] += (a[i + 3] & b[i + 3]).count_ones();
        i += 4;
    }
    let mut tail = 0u32;
    while i < n {
        tail += (a[i] & b[i]).count_ones();
        i += 1;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Fused `popcount(a & b & c)` (4-way unrolled).
#[must_use]
pub fn and3_popcount_scalar(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
    let n = a.len().min(b.len()).min(c.len());
    let mut acc = [0u32; 4];
    let mut i = 0;
    while i + 4 <= n {
        acc[0] += (a[i] & b[i] & c[i]).count_ones();
        acc[1] += (a[i + 1] & b[i + 1] & c[i + 1]).count_ones();
        acc[2] += (a[i + 2] & b[i + 2] & c[i + 2]).count_ones();
        acc[3] += (a[i + 3] & b[i + 3] & c[i + 3]).count_ones();
        i += 4;
    }
    let mut tail = 0u32;
    while i < n {
        tail += (a[i] & b[i] & c[i]).count_ones();
        i += 1;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `dst = a & b`, returning `popcount(dst)` in the same pass.
///
/// The scanner's partial-AND rebuild wants both the stored AND (for the
/// next level down) and its popcount (for the branch-and-bound TP upper
/// bound), so fusing them halves the memory passes.
#[must_use]
pub fn and_store_popcount_scalar(dst: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
    let n = dst.len().min(a.len()).min(b.len());
    let mut acc = [0u32; 4];
    let mut i = 0;
    while i + 4 <= n {
        let w0 = a[i] & b[i];
        let w1 = a[i + 1] & b[i + 1];
        let w2 = a[i + 2] & b[i + 2];
        let w3 = a[i + 3] & b[i + 3];
        dst[i] = w0;
        dst[i + 1] = w1;
        dst[i + 2] = w2;
        dst[i + 3] = w3;
        acc[0] += w0.count_ones();
        acc[1] += w1.count_ones();
        acc[2] += w2.count_ones();
        acc[3] += w3.count_ones();
        i += 4;
    }
    let mut tail = 0u32;
    while i < n {
        let w = a[i] & b[i];
        dst[i] = w;
        tail += w.count_ones();
        i += 1;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Fused popcount of the AND across arbitrarily many rows.
///
/// # Panics
/// Panics if `rows` is empty.
#[must_use]
pub fn and_rows_popcount_scalar(rows: &[&[u64]]) -> u32 {
    let (first, rest) = rows.split_first().expect("at least one row");
    let n = rows.iter().map(|r| r.len()).min().unwrap_or(0);
    let mut total = 0u32;
    for w in 0..n {
        let mut acc = first[w];
        for r in rest {
            acc &= r[w];
        }
        total += acc.count_ones();
    }
    total
}

/// Sparse fused AND+store+popcount over a *compact* parent support.
///
/// `parent_idx`/`parent_val` hold the nonzero words of a partial AND as
/// (word index, word value) pairs in increasing index order. The result of
/// ANDing `row` into that partial is written — again compacted, zero words
/// dropped — into `out_idx`/`out_val` (cleared first), and the total
/// popcount is returned. Because an AND can only *clear* bits, the support
/// shrinks monotonically as a combination chain deepens, so deeper levels
/// touch ever fewer words. Bit-identical to the dense kernel by
/// construction: only all-zero words (which contribute nothing to any AND
/// or popcount) are skipped.
///
/// Gathers through data-dependent indices don't vectorize profitably, so
/// this is a single portable path used by both dispatch modes.
#[must_use]
pub fn and_compact(
    parent_idx: &[u32],
    parent_val: &[u64],
    row: &[u64],
    out_idx: &mut Vec<u32>,
    out_val: &mut Vec<u64>,
) -> u32 {
    debug_assert_eq!(parent_idx.len(), parent_val.len());
    out_idx.clear();
    out_val.clear();
    let mut pop = 0u32;
    for (&wi, &pv) in parent_idx.iter().zip(parent_val) {
        let w = pv & row[wi as usize];
        if w != 0 {
            out_idx.push(wi);
            out_val.push(w);
            pop += w.count_ones();
        }
    }
    pop
}

/// Sparse block sweep: `out[r] = Σ popcount(parent_val & rows[r][parent_idx])`
/// for every candidate row in the block, gathering each row through the
/// parent's compact support. The compact (index, value) pairs stay hot while
/// the candidate rows stream past — the sparse analogue of
/// [`and_popcount_block`]. Gathers through data-dependent indices don't
/// vectorize profitably, so this is a single portable path used by every
/// dispatch tier; the software prefetch of the next row still applies.
pub fn and_compact_popcount_block(
    parent_idx: &[u32],
    parent_val: &[u64],
    rows: &[&[u64]],
    out: &mut [u32],
) {
    debug_assert_eq!(parent_idx.len(), parent_val.len());
    debug_assert!(out.len() >= rows.len());
    for (r, row) in rows.iter().enumerate() {
        if r + 1 < rows.len() {
            prefetch_words(rows[r + 1]);
        }
        let mut pop = 0u32;
        for (&wi, &pv) in parent_idx.iter().zip(parent_val) {
            pop += (pv & row[wi as usize]).count_ones();
        }
        out[r] = pop;
    }
}

/// Maximum rows per [`and_popcount_block`] call — sized so a block of row
/// pointers and its result slots live on the stack and the loop over rows
/// stays short enough for the partial to remain cache-hot.
pub const SWEEP_BLOCK: usize = 16;

/// Issue prefetch hints for every cache line of a packed row (no-op off
/// `x86_64`). The block kernels call this one row ahead of the row they are
/// ANDing, so the next operand is already in flight when its turn comes —
/// the CPU realization of the paper's MemOpt row prefetching.
#[inline]
pub fn prefetch_words(p: &[u64]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; any address is allowed, and SSE is part
    // of the x86_64 baseline.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let mut i = 0;
        while i < p.len() {
            _mm_prefetch(p.as_ptr().add(i).cast(), _MM_HINT_T0);
            i += 8; // one 64-byte cache line = 8 packed words
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Block sweep reference: `out[r] = popcount(partial & rows[r])` for every
/// candidate row, the fixed `partial` operand reread from L1 while the rows
/// stream past it (4-way unrolled, next row prefetched).
pub fn and_popcount_block_scalar(partial: &[u64], rows: &[&[u64]], out: &mut [u32]) {
    debug_assert!(out.len() >= rows.len());
    for (r, row) in rows.iter().enumerate() {
        if r + 1 < rows.len() {
            prefetch_words(rows[r + 1]);
        }
        out[r] = and_popcount_scalar(partial, row);
    }
}

/// Parallel bit extract: compact the bits of `x` selected by `mask` into the
/// low bits of the result — the per-word primitive of column splicing.
#[must_use]
pub fn pext_scalar(x: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    let mut bit = 0u32;
    while mask != 0 {
        let m = mask & mask.wrapping_neg();
        if x & m != 0 {
            out |= 1u64 << bit;
        }
        bit += 1;
        mask ^= m;
    }
    out
}

// ---------------------------------------------------------------------------
// AVX2 / POPCNT / BMI2 paths (x86_64 only, runtime-gated)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_storeu_si256, _pext_u64,
    };

    #[inline]
    unsafe fn lanes(v: __m256i) -> [u64; 4] {
        // Safe transmute: __m256i and [u64; 4] have identical size/layout.
        std::mem::transmute(v)
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn popcount(a: &[u64]) -> u32 {
        // Inside this target_feature scope `count_ones` lowers to POPCNT.
        let mut acc = [0u32; 4];
        let mut chunks = a.chunks_exact(4);
        for c in &mut chunks {
            acc[0] += c[0].count_ones();
            acc[1] += c[1].count_ones();
            acc[2] += c[2].count_ones();
            acc[3] += c[3].count_ones();
        }
        let tail: u32 = chunks.remainder().iter().map(|w| w.count_ones()).sum();
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_popcount(a: &[u64], b: &[u64]) -> u32 {
        let n = a.len().min(b.len());
        let mut total = 0u32;
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let l = lanes(_mm256_and_si256(va, vb));
            total += l[0].count_ones() + l[1].count_ones() + l[2].count_ones() + l[3].count_ones();
            i += 4;
        }
        while i < n {
            total += (a[i] & b[i]).count_ones();
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and3_popcount(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
        let n = a.len().min(b.len()).min(c.len());
        let mut total = 0u32;
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let vc = _mm256_loadu_si256(c.as_ptr().add(i).cast());
            let l = lanes(_mm256_and_si256(_mm256_and_si256(va, vb), vc));
            total += l[0].count_ones() + l[1].count_ones() + l[2].count_ones() + l[3].count_ones();
            i += 4;
        }
        while i < n {
            total += (a[i] & b[i] & c[i]).count_ones();
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime. `dst`, `a`, `b` must not overlap.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_store_popcount(dst: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        let n = dst.len().min(a.len()).min(b.len());
        let mut total = 0u32;
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let v = _mm256_and_si256(va, vb);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), v);
            let l = lanes(v);
            total += l[0].count_ones() + l[1].count_ones() + l[2].count_ones() + l[3].count_ones();
            i += 4;
        }
        while i < n {
            let w = a[i] & b[i];
            dst[i] = w;
            total += w.count_ones();
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_rows_popcount(rows: &[&[u64]]) -> u32 {
        match rows.len() {
            0 => panic!("at least one row"),
            1 => popcount(rows[0]),
            2 => and_popcount(rows[0], rows[1]),
            3 => and3_popcount(rows[0], rows[1], rows[2]),
            _ => {
                let n = rows.iter().map(|r| r.len()).min().unwrap_or(0);
                let mut total = 0u32;
                let mut i = 0;
                while i + 4 <= n {
                    let mut v = _mm256_loadu_si256(rows[0].as_ptr().add(i).cast());
                    for r in &rows[1..] {
                        v = _mm256_and_si256(v, _mm256_loadu_si256(r.as_ptr().add(i).cast()));
                    }
                    let l = lanes(v);
                    total += l[0].count_ones()
                        + l[1].count_ones()
                        + l[2].count_ones()
                        + l[3].count_ones();
                    i += 4;
                }
                while i < n {
                    let mut acc = rows[0][i];
                    for r in &rows[1..] {
                        acc &= r[i];
                    }
                    total += acc.count_ones();
                    i += 1;
                }
                total
            }
        }
    }

    /// # Safety
    /// Requires BMI2 at runtime.
    #[target_feature(enable = "bmi2")]
    pub unsafe fn pext(x: u64, mask: u64) -> u64 {
        _pext_u64(x, mask)
    }

    /// # Safety
    /// Requires AVX2 + POPCNT at runtime.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and_popcount_block(partial: &[u64], rows: &[&[u64]], out: &mut [u32]) {
        debug_assert!(out.len() >= rows.len());
        for (r, row) in rows.iter().enumerate() {
            if r + 1 < rows.len() {
                super::prefetch_words(rows[r + 1]);
            }
            out[r] = and_popcount(partial, row);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX-512F + VPOPCNTQ paths (x86_64 only, runtime-gated)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::{
        _mm512_add_epi64, _mm512_and_si512, _mm512_loadu_si512, _mm512_popcnt_epi64,
        _mm512_reduce_add_epi64, _mm512_setzero_si512, _mm512_storeu_si512,
    };

    /// # Safety
    /// Requires AVX-512F + AVX-512VPOPCNTDQ at runtime.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn popcount(a: &[u64]) -> u32 {
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= a.len() {
            let v = _mm512_loadu_si512(a.as_ptr().add(i).cast());
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64 as u32;
        while i < a.len() {
            total += a[i].count_ones();
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX-512F + AVX-512VPOPCNTDQ at runtime.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn and_popcount(a: &[u64], b: &[u64]) -> u32 {
        let n = a.len().min(b.len());
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i).cast());
            let vb = _mm512_loadu_si512(b.as_ptr().add(i).cast());
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64 as u32;
        while i < n {
            total += (a[i] & b[i]).count_ones();
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX-512F + AVX-512VPOPCNTDQ at runtime.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn and3_popcount(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
        let n = a.len().min(b.len()).min(c.len());
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i).cast());
            let vb = _mm512_loadu_si512(b.as_ptr().add(i).cast());
            let vc = _mm512_loadu_si512(c.as_ptr().add(i).cast());
            let v = _mm512_and_si512(_mm512_and_si512(va, vb), vc);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64 as u32;
        while i < n {
            total += (a[i] & b[i] & c[i]).count_ones();
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX-512F + AVX-512VPOPCNTDQ at runtime. `dst`, `a`, `b`
    /// must not overlap.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn and_store_popcount(dst: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        let n = dst.len().min(a.len()).min(b.len());
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i).cast());
            let vb = _mm512_loadu_si512(b.as_ptr().add(i).cast());
            let v = _mm512_and_si512(va, vb);
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), v);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64 as u32;
        while i < n {
            let w = a[i] & b[i];
            dst[i] = w;
            total += w.count_ones();
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX-512F + AVX-512VPOPCNTDQ at runtime.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn and_rows_popcount(rows: &[&[u64]]) -> u32 {
        match rows.len() {
            0 => panic!("at least one row"),
            1 => popcount(rows[0]),
            2 => and_popcount(rows[0], rows[1]),
            3 => and3_popcount(rows[0], rows[1], rows[2]),
            _ => {
                let n = rows.iter().map(|r| r.len()).min().unwrap_or(0);
                let mut acc = _mm512_setzero_si512();
                let mut i = 0;
                while i + 8 <= n {
                    let mut v = _mm512_loadu_si512(rows[0].as_ptr().add(i).cast());
                    for r in &rows[1..] {
                        v = _mm512_and_si512(v, _mm512_loadu_si512(r.as_ptr().add(i).cast()));
                    }
                    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
                    i += 8;
                }
                let mut total = _mm512_reduce_add_epi64(acc) as u64 as u32;
                while i < n {
                    let mut w = rows[0][i];
                    for r in &rows[1..] {
                        w &= r[i];
                    }
                    total += w.count_ones();
                    i += 1;
                }
                total
            }
        }
    }

    /// # Safety
    /// Requires AVX-512F + AVX-512VPOPCNTDQ at runtime.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn and_popcount_block(partial: &[u64], rows: &[&[u64]], out: &mut [u32]) {
        debug_assert!(out.len() >= rows.len());
        for (r, row) in rows.iter().enumerate() {
            if r + 1 < rows.len() {
                super::prefetch_words(rows[r + 1]);
            }
            out[r] = and_popcount(partial, row);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

/// Population count of a packed word slice.
#[inline]
#[must_use]
pub fn popcount(a: &[u64]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: dispatch verified the matching feature set at runtime.
    match active() {
        Dispatch::Avx512 => return unsafe { avx512::popcount(a) },
        Dispatch::Avx2 => return unsafe { x86::popcount(a) },
        Dispatch::Scalar => {}
    }
    popcount_scalar(a)
}

/// Fused `popcount(a & b)`.
#[inline]
#[must_use]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: dispatch verified the matching feature set at runtime.
    match active() {
        Dispatch::Avx512 => return unsafe { avx512::and_popcount(a, b) },
        Dispatch::Avx2 => return unsafe { x86::and_popcount(a, b) },
        Dispatch::Scalar => {}
    }
    and_popcount_scalar(a, b)
}

/// Fused `popcount(a & b & c)`.
#[inline]
#[must_use]
pub fn and3_popcount(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: dispatch verified the matching feature set at runtime.
    match active() {
        Dispatch::Avx512 => return unsafe { avx512::and3_popcount(a, b, c) },
        Dispatch::Avx2 => return unsafe { x86::and3_popcount(a, b, c) },
        Dispatch::Scalar => {}
    }
    and3_popcount_scalar(a, b, c)
}

/// `dst = a & b`, returning `popcount(dst)` in the same pass.
#[inline]
#[must_use]
pub fn and_store_popcount(dst: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: dispatch verified the matching feature set at runtime; the
    // slices are distinct borrows so they cannot overlap.
    match active() {
        Dispatch::Avx512 => return unsafe { avx512::and_store_popcount(dst, a, b) },
        Dispatch::Avx2 => return unsafe { x86::and_store_popcount(dst, a, b) },
        Dispatch::Scalar => {}
    }
    and_store_popcount_scalar(dst, a, b)
}

/// Fused popcount of the AND across arbitrarily many rows.
///
/// # Panics
/// Panics if `rows` is empty.
#[inline]
#[must_use]
pub fn and_rows_popcount(rows: &[&[u64]]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: dispatch verified the matching feature set at runtime.
    match active() {
        Dispatch::Avx512 => return unsafe { avx512::and_rows_popcount(rows) },
        Dispatch::Avx2 => return unsafe { x86::and_rows_popcount(rows) },
        Dispatch::Scalar => {}
    }
    and_rows_popcount_scalar(rows)
}

/// Parallel bit extract (BMI2 `PEXT` when available).
#[inline]
#[must_use]
pub fn pext(x: u64, mask: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: both upper tiers imply BMI2 (detection requires it for AVX2,
    // and AVX-512 selection requires the AVX2 set first).
    match active() {
        Dispatch::Avx512 | Dispatch::Avx2 => return unsafe { x86::pext(x, mask) },
        Dispatch::Scalar => {}
    }
    pext_scalar(x, mask)
}

/// Block sweep: `out[r] = popcount(partial & rows[r])` for every candidate
/// row. The fixed `partial` operand stays register/L1-resident while the
/// candidate rows stream past it, each row prefetched one iteration ahead.
/// Callers chunk `rows` to at most [`SWEEP_BLOCK`] entries so the pointer
/// block and result slots live on the stack.
#[inline]
pub fn and_popcount_block(partial: &[u64], rows: &[&[u64]], out: &mut [u32]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: dispatch verified the matching feature set at runtime.
    match active() {
        Dispatch::Avx512 => return unsafe { avx512::and_popcount_block(partial, rows, out) },
        Dispatch::Avx2 => return unsafe { x86::and_popcount_block(partial, rows, out) },
        Dispatch::Scalar => {}
    }
    and_popcount_block_scalar(partial, rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that pin the process-wide dispatch selection, so the
    /// parallel test runner can't interleave two force/release sequences.
    static FORCE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lcg_words(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn scalar_matches_naive_on_ragged_lengths() {
        for n in 0..10 {
            let a = lcg_words(n, 3);
            let b = lcg_words(n, 17);
            let c = lcg_words(n, 91);
            let naive_and: u32 = a.iter().zip(&b).map(|(x, y)| (x & y).count_ones()).sum();
            let naive3: u32 = a
                .iter()
                .zip(&b)
                .zip(&c)
                .map(|((x, y), z)| (x & y & z).count_ones())
                .sum();
            assert_eq!(and_popcount_scalar(&a, &b), naive_and, "n={n}");
            assert_eq!(and3_popcount_scalar(&a, &b, &c), naive3, "n={n}");
            assert_eq!(
                popcount_scalar(&a),
                a.iter().map(|w| w.count_ones()).sum::<u32>()
            );
            let mut dst = vec![0u64; n];
            assert_eq!(and_store_popcount_scalar(&mut dst, &a, &b), naive_and);
            for i in 0..n {
                assert_eq!(dst[i], a[i] & b[i]);
            }
        }
    }

    #[test]
    fn dispatched_matches_scalar() {
        // On x86_64 with AVX2 this exercises the vector path; elsewhere it
        // trivially passes (both sides scalar). The proptest suite covers
        // ragged widths more thoroughly.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 13, 64] {
            let a = lcg_words(n, 5);
            let b = lcg_words(n, 23);
            let c = lcg_words(n, 77);
            assert_eq!(popcount(&a), popcount_scalar(&a), "n={n}");
            assert_eq!(and_popcount(&a, &b), and_popcount_scalar(&a, &b), "n={n}");
            assert_eq!(
                and3_popcount(&a, &b, &c),
                and3_popcount_scalar(&a, &b, &c),
                "n={n}"
            );
            let mut d1 = vec![0u64; n];
            let mut d2 = vec![0u64; n];
            assert_eq!(
                and_store_popcount(&mut d1, &a, &b),
                and_store_popcount_scalar(&mut d2, &a, &b),
                "n={n}"
            );
            assert_eq!(d1, d2);
            let rows: Vec<&[u64]> = vec![&a, &b, &c, &a];
            if n > 0 {
                assert_eq!(
                    and_rows_popcount(&rows),
                    and_rows_popcount_scalar(&rows),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn and_compact_matches_dense() {
        for n in [0usize, 1, 4, 7, 16] {
            let a = lcg_words(n, 11);
            let row = lcg_words(n, 29);
            // Seed the compact parent from `a`, dropping every third word to
            // simulate an already-sparse support.
            let mut pidx = Vec::new();
            let mut pval = Vec::new();
            for (i, &w) in a.iter().enumerate() {
                if i % 3 != 0 && w != 0 {
                    pidx.push(i as u32);
                    pval.push(w);
                }
            }
            let mut oidx = Vec::new();
            let mut oval = Vec::new();
            let pop = and_compact(&pidx, &pval, &row, &mut oidx, &mut oval);
            let want: u32 = pidx
                .iter()
                .zip(&pval)
                .map(|(&i, &v)| (v & row[i as usize]).count_ones())
                .sum();
            assert_eq!(pop, want, "n={n}");
            assert!(oval.iter().all(|&w| w != 0));
            assert!(oidx.windows(2).all(|w| w[0] < w[1]));
            for (&i, &v) in oidx.iter().zip(&oval) {
                let orig = pidx.iter().position(|&p| p == i).unwrap();
                assert_eq!(v, pval[orig] & row[i as usize]);
            }
        }
    }

    #[test]
    fn pext_matches_scalar_reference() {
        let xs = lcg_words(32, 9);
        let ms = lcg_words(32, 41);
        for (x, m) in xs.iter().zip(&ms) {
            assert_eq!(pext(*x, *m), pext_scalar(*x, *m));
        }
        assert_eq!(pext_scalar(0b1011, 0b1010), 0b11);
        assert_eq!(pext_scalar(u64::MAX, 0), 0);
        assert_eq!(pext_scalar(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn force_scalar_pins_and_releases() {
        let _guard = FORCE_LOCK.lock().unwrap();
        force_scalar(true);
        assert_eq!(active(), Dispatch::Scalar);
        force_scalar(false);
        // Whatever detection says, it must be stable across calls.
        assert_eq!(active(), active());
    }

    #[test]
    fn force_rejects_tiers_above_detection() {
        let _guard = FORCE_LOCK.lock().unwrap();
        let detected = {
            assert!(force(None));
            active()
        };
        // Pinning at or below the detected tier succeeds; above it fails and
        // leaves the selection unchanged.
        for want in [Dispatch::Scalar, Dispatch::Avx2, Dispatch::Avx512] {
            let ok = force(Some(want));
            if want <= detected {
                assert!(ok, "pin {want:?} under detected {detected:?}");
                assert_eq!(active(), want);
            } else {
                assert!(!ok, "pin {want:?} above detected {detected:?}");
            }
            assert!(force(None));
        }
        assert_eq!(active(), detected);
    }

    #[test]
    fn block_kernel_matches_per_row_scalar() {
        for n in [0usize, 1, 3, 7, 8, 9, 16, 33] {
            let partial = lcg_words(n, 101);
            let r0 = lcg_words(n, 7);
            let r1 = lcg_words(n, 19);
            let r2 = lcg_words(n, 55);
            for take in 0..=3usize {
                let rows: Vec<&[u64]> = [&r0[..], &r1[..], &r2[..]][..take].to_vec();
                let mut got = vec![0u32; take];
                and_popcount_block_scalar(&partial, &rows, &mut got);
                for (r, row) in rows.iter().enumerate() {
                    assert_eq!(got[r], and_popcount_scalar(&partial, row), "n={n} r={r}");
                }
                // Dispatched path (whatever tier is active) must agree.
                let mut disp = vec![0u32; take];
                and_popcount_block(&partial, &rows, &mut disp);
                assert_eq!(disp, got, "n={n} take={take}");
            }
        }
    }

    #[test]
    fn block_kernel_identical_across_forced_tiers() {
        let _guard = FORCE_LOCK.lock().unwrap();
        let detected = {
            assert!(force(None));
            active()
        };
        let n = 37; // ragged: exercises 8-word vector body + scalar tail
        let partial = lcg_words(n, 13);
        let rows_owned: Vec<Vec<u64>> = (0..SWEEP_BLOCK as u64)
            .map(|s| lcg_words(n, 200 + s))
            .collect();
        let rows: Vec<&[u64]> = rows_owned.iter().map(Vec::as_slice).collect();
        let mut reference = vec![0u32; rows.len()];
        and_popcount_block_scalar(&partial, &rows, &mut reference);
        for tier in [Dispatch::Scalar, Dispatch::Avx2, Dispatch::Avx512] {
            if !force(Some(tier)) {
                continue; // host lacks this tier
            }
            let mut got = vec![0u32; rows.len()];
            and_popcount_block(&partial, &rows, &mut got);
            assert_eq!(got, reference, "tier={tier:?}");
        }
        assert!(force(None));
        assert_eq!(active(), detected);
    }

    #[test]
    fn compact_block_matches_and_compact() {
        for n in [1usize, 4, 9, 16] {
            let a = lcg_words(n, 31);
            let mut pidx = Vec::new();
            let mut pval = Vec::new();
            for (i, &w) in a.iter().enumerate() {
                if i % 2 == 0 && w != 0 {
                    pidx.push(i as u32);
                    pval.push(w);
                }
            }
            let rows_owned: Vec<Vec<u64>> = (0..5u64).map(|s| lcg_words(n, 400 + s)).collect();
            let rows: Vec<&[u64]> = rows_owned.iter().map(Vec::as_slice).collect();
            let mut got = vec![0u32; rows.len()];
            and_compact_popcount_block(&pidx, &pval, &rows, &mut got);
            let (mut oidx, mut oval) = (Vec::new(), Vec::new());
            for (r, row) in rows.iter().enumerate() {
                let want = and_compact(&pidx, &pval, row, &mut oidx, &mut oval);
                assert_eq!(got[r], want, "n={n} r={r}");
            }
        }
    }
}
