//! Multi-stage, multi-kernel parallel max-reduction (§III-E).
//!
//! Storing one 20-byte record per 4-hit combination would need ~24 TB for
//! BRCA. The paper instead:
//!
//! 1. **`maxF` kernel** — every thread scores its combinations, then each
//!    *block* (512 threads) performs a single-stage shared-memory reduction
//!    and writes exactly one record: a 512× cut (24.3 TB → 47.5 GB).
//! 2. **`parallelReduceMax` kernel** — a multi-stage tree reduction over the
//!    per-block records within each GPU.
//! 3. Each MPI rank returns one 20-byte record to rank 0, which reduces over
//!    ranks.
//!
//! Here the same three stages are implemented over [`Scored`] values with the
//! deterministic `max_det` combiner, so every stage — and any regrouping of
//! blocks — produces bit-identical winners. The functions also report how
//! many intermediate records each stage materializes, which the benches use
//! to reproduce the paper's memory-footprint arithmetic.

use crate::weight::Scored;

/// The paper's CUDA block size for the `maxF` kernel.
pub const PAPER_BLOCK_SIZE: usize = 512;

/// Outcome of a staged reduction: the winner plus footprint accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReduceStats {
    /// Records materialized after the block stage (one per block).
    pub block_records: u64,
    /// Tree-reduction stages executed in the second kernel.
    pub tree_stages: u32,
}

/// Stage 1: block-level single-stage reduction.
///
/// Partitions `scores` into chunks of `block_size` (the final block may be
/// short) and reduces each chunk to one record — what `maxF` writes to
/// global memory.
#[must_use]
pub fn block_reduce<const H: usize>(scores: &[Scored<H>], block_size: usize) -> Vec<Scored<H>> {
    assert!(block_size > 0, "block size must be positive");
    scores
        .chunks(block_size)
        .map(|chunk| {
            chunk
                .iter()
                .copied()
                .fold(Scored::NEG_INFINITY, Scored::max_det)
        })
        .collect()
}

/// Stage 2: multi-stage (tree) reduction of per-block records, as
/// `parallelReduceMax` performs within one GPU. Pairwise halving until a
/// single record remains. Returns the winner and the number of stages.
#[must_use]
pub fn tree_reduce<const H: usize>(mut records: Vec<Scored<H>>) -> (Scored<H>, u32) {
    if records.is_empty() {
        return (Scored::NEG_INFINITY, 0);
    }
    let mut stages = 0;
    while records.len() > 1 {
        let half = records.len().div_ceil(2);
        for idx in 0..records.len() / 2 {
            let hi = records[half + idx];
            records[idx] = records[idx].max_det(hi);
        }
        records.truncate(half);
        stages += 1;
    }
    (records[0], stages)
}

/// The full two-kernel pipeline for one GPU's scores: block reduce then tree
/// reduce. Returns the GPU's single record plus stats.
#[must_use]
pub fn gpu_reduce<const H: usize>(
    scores: &[Scored<H>],
    block_size: usize,
) -> (Scored<H>, ReduceStats) {
    let blocks = block_reduce(scores, block_size);
    let block_records = blocks.len() as u64;
    let (winner, tree_stages) = tree_reduce(blocks);
    (
        winner,
        ReduceStats {
            block_records,
            tree_stages,
        },
    )
}

/// Stage 3: rank-0 reduction over the single records returned by each MPI
/// process.
#[must_use]
pub fn rank0_reduce<const H: usize>(per_rank: &[Scored<H>]) -> Scored<H> {
    per_rank
        .iter()
        .copied()
        .fold(Scored::NEG_INFINITY, Scored::max_det)
}

/// Fold any stream of partial winners — per-worker, per-GPU, per-rank —
/// under the deterministic total order. The fold order is irrelevant because
/// [`Scored::cmp_det`] is total, which is what lets the work-stealing scan's
/// nondeterministic schedule still return a bit-identical argmax.
#[must_use]
pub fn fold_partials<const H: usize>(parts: impl IntoIterator<Item = Scored<H>>) -> Scored<H> {
    parts
        .into_iter()
        .fold(Scored::NEG_INFINITY, Scored::max_det)
}

/// Bytes of intermediate storage the unreduced candidate list would need
/// (`n_combos` 20-byte records) versus after the block stage — the paper's
/// 24.34 TB → 47.5 GB computation for BRCA.
#[must_use]
pub fn footprint_bytes(n_combos: u64, block_size: u64) -> (u64, u64) {
    let record = crate::weight::PAPER_RECORD_BYTES as u64;
    let full = n_combos * record;
    let blocked = n_combos.div_ceil(block_size) * record;
    (full, blocked)
}

/// Deterministic top-`k` selection under the same total order as
/// [`Scored::max_det`] — the ranked candidate list a downstream analyst
/// wants alongside the argmax (the paper's supporting tables list every
/// chosen combination; exploratory use wants the runners-up too).
///
/// Returns at most `k` records, best first. `O(n log k)` via a bounded
/// binary heap of losers.
///
/// ```
/// use multihit_core::reduce::top_k;
/// use multihit_core::weight::Scored;
/// let mk = |score, g| Scored::<2> { score, tp: 0, tn: 0, genes: [g, g + 1] };
/// let best = top_k(&[mk(3, 0), mk(9, 1), mk(5, 2)], 2);
/// assert_eq!(best[0].score, 9);
/// assert_eq!(best[1].score, 5);
/// ```
#[must_use]
pub fn top_k<const H: usize>(scores: &[Scored<H>], k: usize) -> Vec<Scored<H>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if k == 0 {
        return Vec::new();
    }
    // Min-heap keyed by the deterministic order: the root is the weakest
    // of the current top-k.
    let mut heap: BinaryHeap<Reverse<Scored<H>>> = BinaryHeap::with_capacity(k + 1);
    for &s in scores {
        if heap.len() < k {
            heap.push(Reverse(s));
        } else if let Some(Reverse(weakest)) = heap.peek() {
            if s.beats(weakest) {
                heap.pop();
                heap.push(Reverse(s));
            }
        }
    }
    let mut v: Vec<Scored<H>> = heap.into_iter().map(|Reverse(s)| s).collect();
    v.sort_by(|a, b| b.cmp_det(a));
    v
}

/// Merge several per-shard top-`k` lists into a global top-`k` (each shard
/// list need not be sorted). Equivalent to `top_k` over the concatenation.
#[must_use]
pub fn merge_top_k<const H: usize>(shards: &[Vec<Scored<H>>], k: usize) -> Vec<Scored<H>> {
    let flat: Vec<Scored<H>> = shards.iter().flatten().copied().collect();
    top_k(&flat, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combin::binomial;

    fn scored(score: u64, g0: u32) -> Scored<2> {
        Scored {
            score,
            tp: 0,
            tn: 0,
            genes: [g0, g0 + 1],
        }
    }

    #[test]
    fn block_reduce_takes_chunk_maxima() {
        let scores = vec![
            scored(1, 0),
            scored(9, 1),
            scored(4, 2),
            scored(7, 3),
            scored(2, 4),
        ];
        let blocks = block_reduce(&scores, 2);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].score, 9);
        assert_eq!(blocks[1].score, 7);
        assert_eq!(blocks[2].score, 2);
    }

    #[test]
    fn tree_reduce_finds_global_max() {
        let recs: Vec<_> = (0..100u32)
            .map(|i| scored(u64::from(i * 7 % 83), i))
            .collect();
        let expect = recs.iter().copied().max().unwrap();
        let (win, stages) = tree_reduce(recs);
        assert_eq!(win, expect);
        assert_eq!(stages, 7); // ceil(log2(100))
    }

    #[test]
    fn empty_inputs_yield_identity() {
        let (w, stats) = gpu_reduce::<2>(&[], 512);
        assert_eq!(w, Scored::NEG_INFINITY);
        assert_eq!(stats.block_records, 0);
        assert_eq!(rank0_reduce::<2>(&[]), Scored::NEG_INFINITY);
    }

    #[test]
    fn staged_equals_flat_reduction() {
        // The winner must not depend on block size.
        let scores: Vec<_> = (0..1000u32)
            .map(|i| scored(u64::from((i * 131 + 17) % 997), i))
            .collect();
        let flat = scores.iter().copied().max().unwrap();
        for bs in [1, 3, 32, 512, 1000, 4096] {
            let (w, _) = gpu_reduce(&scores, bs);
            assert_eq!(w, flat, "block size {bs}");
        }
    }

    #[test]
    fn staged_respects_deterministic_ties() {
        // Two equal scores: the colex-smaller combination must win under
        // every blocking, exactly like the flat deterministic fold.
        let mut scores = vec![scored(5, 10); 600];
        scores[37] = scored(5, 3);
        scores[555] = scored(5, 3);
        for bs in [2, 7, 512] {
            let (w, _) = gpu_reduce(&scores, bs);
            assert_eq!(w.genes, [3, 4], "block size {bs}");
        }
    }

    #[test]
    fn three_stage_pipeline_matches_flat() {
        // blocks → GPU records → rank records → rank0.
        let scores: Vec<_> = (0..5000u32)
            .map(|i| {
                scored(
                    u64::from(i.wrapping_mul(2654435761).wrapping_mul(i) % 4999),
                    i % 4000,
                )
            })
            .collect();
        let flat = scores.iter().copied().max().unwrap();
        let per_rank: Vec<_> = scores
            .chunks(1250) // 4 "ranks"
            .map(|r| gpu_reduce(r, 512).0)
            .collect();
        assert_eq!(rank0_reduce(&per_rank), flat);
    }

    #[test]
    fn footprint_matches_paper_brca_numbers() {
        // BRCA: G = 19411 under the 3x1 scheme ⇒ C(G,3) ≈ 1.22e12 per-thread
        // records ⇒ 24.34 TB unreduced; block size 512 ⇒ ~47.5 GB (§III-E).
        let combos = binomial(19411, 3);
        let (full, blocked) = footprint_bytes(combos, 512);
        assert!((full as f64 / 1e12 - 24.34).abs() < 0.5, "full = {full}");
        assert!(
            (blocked as f64 / 1e9 - 47.5).abs() < 1.0,
            "blocked = {blocked}"
        );
    }

    #[test]
    fn top_k_matches_sort() {
        let scores: Vec<Scored<2>> = (0..500u32)
            .map(|i| scored(u64::from(i.wrapping_mul(48271) % 337), i % 300))
            .collect();
        for k in [0usize, 1, 3, 10, 499, 500, 600] {
            let got = top_k(&scores, k);
            let mut expect = scores.clone();
            expect.sort_by(|a, b| b.cmp_det(a));
            expect.truncate(k);
            assert_eq!(got, expect, "k={k}");
        }
    }

    #[test]
    fn top_k_head_is_the_argmax() {
        let scores: Vec<Scored<2>> = (0..100u32)
            .map(|i| scored(u64::from(i * 13 % 71), i))
            .collect();
        let flat = scores
            .iter()
            .copied()
            .fold(Scored::NEG_INFINITY, Scored::max_det);
        assert_eq!(top_k(&scores, 5)[0], flat);
    }

    #[test]
    fn sharded_top_k_equals_global() {
        let scores: Vec<Scored<2>> = (0..400u32)
            .map(|i| scored(u64::from(i.wrapping_mul(2654435761) % 991), i % 350))
            .collect();
        let shards: Vec<Vec<Scored<2>>> = scores.chunks(97).map(|c| top_k(c, 10)).collect();
        assert_eq!(merge_top_k(&shards, 10), top_k(&scores, 10));
    }

    #[test]
    fn top_k_ties_resolve_colex_smaller_first() {
        // Equal scores everywhere: the retained k and their order must be
        // exactly the colex-smallest combinations, matching `cmp_det`.
        let scores: Vec<Scored<2>> = (0..50u32).rev().map(|g| scored(7, g)).collect();
        let got = top_k(&scores, 5);
        let genes: Vec<[u32; 2]> = got.iter().map(|s| s.genes).collect();
        assert_eq!(genes, vec![[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]]);
    }

    #[test]
    fn shard_merge_order_never_changes_kth_identity() {
        // The frontier floor is the K-th element: its *identity* (not just
        // its score) must be invariant under how shards are formed and in
        // what order they merge, even with heavy score ties straddling the
        // K boundary.
        let scores: Vec<Scored<2>> = (0..300u32)
            .map(|i| scored(u64::from(i % 5), i % 280)) // only 5 distinct scores
            .collect();
        for k in [1usize, 4, 64] {
            let want = top_k(&scores, k);
            for chunk in [29usize, 50, 97, 150] {
                let mut shards: Vec<Vec<Scored<2>>> =
                    scores.chunks(chunk).map(|c| top_k(c, k)).collect();
                let orders: Vec<Vec<Vec<Scored<2>>>> =
                    vec![shards.clone(), shards.iter().rev().cloned().collect(), {
                        shards.rotate_left(1);
                        shards.clone()
                    }];
                for (o, sh) in orders.iter().enumerate() {
                    let got = merge_top_k(sh, k);
                    assert_eq!(got, want, "k={k} chunk={chunk} order={o}");
                    assert_eq!(
                        got.last().map(|s| s.genes),
                        want.last().map(|s| s.genes),
                        "k-th identity k={k} chunk={chunk} order={o}"
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_stats_block_count() {
        let scores = vec![scored(0, 0); 1025];
        let (_, stats) = gpu_reduce(&scores, 512);
        assert_eq!(stats.block_records, 3);
        assert_eq!(stats.tree_stages, 2);
    }
}
