//! Persistent top-K frontier for exact lazy greedy (Minoux-style).
//!
//! After one full scan, the top-K scored combinations plus the K-th score
//! (the *floor*) are enough to decide later iterations without rescanning:
//! the normal matrix never changes (TN is constant per combination) and
//! excluding covered tumor columns can only *lower* TP, so every
//! combination's integer numerator `α.num·TP + α.den·TN` is monotonically
//! non-increasing across iterations. The denominator `q·(Nt+Nn)` is shared
//! within an iteration, so numerator order is score order.
//!
//! **Floor check.** Let `floor` be the K-th numerator at build time. Any
//! combination *outside* the frontier satisfies
//! `score_now ≤ score_at_build ≤ floor`. If the best *rescored* frontier
//! member has `score_now > floor` (strictly), it beats every non-frontier
//! combination outright — no tie ambiguity — and the deterministic
//! [`Scored::max_det`] fold over the rescored frontier resolves intra-
//! frontier ties, so the result is bit-identical to a full rescan. The
//! check stays valid across consecutive hit iterations without rebuilding:
//! the stale floor remains an upper bound because scores only decrease.
//!
//! On a miss the caller falls back to a pruned full scan, seeded with the
//! K-th *rescored* frontier score: all K rescored members are actual
//! current combinations scoring at least that seed, so a subtree whose
//! bound is strictly below it cannot contribute a top-K member.
//!
//! **Splice remap rule.** BitSplicing drops tumor *columns* (samples),
//! never gene rows, so cached gene ids stay valid verbatim: rescoring a
//! frontier member just re-reads the current (shorter) tumor rows. Mask
//! mode instead ANDs the active-column mask into the TP count.

use crate::bitmat::BitMatrix;
use crate::kernel;
use crate::reduce::merge_top_k;
use crate::weight::{Alpha, Combo, Scored};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default frontier size. Large enough that the winner's neighborhood
/// usually survives a cover step, small enough that a rescore is ~free
/// next to a `C(G,H)` scan.
pub const DEFAULT_FRONTIER_K: usize = 64;

/// A bounded best-K accumulator under the deterministic total order.
///
/// Entry rule matches [`crate::reduce::top_k`] exactly: while not full,
/// everything enters; once full, a candidate enters iff it
/// [`Scored::beats`] the current weakest (so colex-later ties lose).
/// The scan uses the weakest-of-full-heap score as its pruning floor.
pub struct TopK<const H: usize> {
    k: usize,
    heap: BinaryHeap<Reverse<Scored<H>>>,
}

impl<const H: usize> TopK<H> {
    /// An empty accumulator keeping at most `k` entries.
    #[must_use]
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer a candidate; returns `true` iff it was admitted.
    #[inline]
    pub fn offer(&mut self, s: Scored<H>) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(Reverse(s));
            return true;
        }
        let Some(Reverse(weakest)) = self.heap.peek() else {
            return false;
        };
        if s.beats(weakest) {
            self.heap.pop();
            self.heap.push(Reverse(s));
            return true;
        }
        false
    }

    /// True once `k` entries are held (the floor is then meaningful).
    #[inline]
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.k > 0 && self.heap.len() >= self.k
    }

    /// The weakest retained score (0 while empty).
    #[inline]
    #[must_use]
    pub fn floor_score(&self) -> u64 {
        self.heap.peek().map_or(0, |Reverse(s)| s.score)
    }

    /// Entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff nothing has been admitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain into a best-first sorted list (same order as
    /// [`crate::reduce::top_k`]).
    #[must_use]
    pub fn into_sorted(self) -> Vec<Scored<H>> {
        let mut v: Vec<Scored<H>> = self.heap.into_iter().map(|Reverse(s)| s).collect();
        v.sort_by(|a, b| b.cmp_det(a));
        v
    }
}

/// Rescore one combination against the current (possibly spliced) tumor
/// matrix and the normal matrix, with an optional active-column tumor mask.
///
/// Identical to [`crate::weight::score_combo`] plus the mask rule the
/// scanner applies, via the same fused AND+popcount kernels.
#[must_use]
pub fn rescore_combo<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    tumor_mask: Option<&[u64]>,
    genes: &Combo<H>,
    alpha: Alpha,
) -> Scored<H> {
    let words = tumor.words_per_row();
    let mut rows: Vec<&[u64]> = Vec::with_capacity(H + 1);
    for &g in genes {
        rows.push(tumor.row(g as usize));
    }
    if let Some(m) = tumor_mask {
        rows.push(&m[..words]);
    }
    let tp = kernel::and_rows_popcount(&rows);
    let n_rows: Vec<&[u64]> = genes.iter().map(|&g| normal.row(g as usize)).collect();
    let covered = kernel::and_rows_popcount(&n_rows);
    let tn = normal.n_samples() as u32 - covered;
    Scored {
        score: alpha.score(tp, tn),
        tp,
        tn,
        genes: *genes,
    }
}

/// Outcome of rescoring a frontier against the current matrices.
#[derive(Clone, Copy, Debug)]
pub struct RescoredFrontier<const H: usize> {
    /// Deterministic best of the rescored members.
    pub best: Scored<H>,
    /// The K-th (minimum) *rescored* score — a sound seed for the fallback
    /// scan's shared pruning bound (every member is a real current combo
    /// scoring at least this).
    pub kth_score: u64,
    /// Members rescored (= frontier size).
    pub rescored: u64,
}

/// The persistent frontier: top-K combinations plus the build-time floor.
#[derive(Clone, Debug)]
pub struct Frontier<const H: usize> {
    entries: Vec<Scored<H>>,
    floor: u64,
    complete: bool,
}

impl<const H: usize> Frontier<H> {
    /// Build from an already-merged, best-first top-K list.
    ///
    /// `total` is the size of the full enumeration the list was selected
    /// from; when the list holds *all* of it the frontier is `complete`
    /// and every later rescore is a hit by construction.
    #[must_use]
    pub fn new(entries: Vec<Scored<H>>, total: u64) -> Self {
        let complete = entries.len() as u64 >= total;
        let floor = if complete {
            0
        } else {
            entries.last().map_or(0, |s| s.score)
        };
        Frontier {
            entries,
            floor,
            complete,
        }
    }

    /// Merge per-worker (or per-rank) top-K shards into the global
    /// frontier, exactly as [`crate::reduce::merge_top_k`] would.
    #[must_use]
    pub fn from_shards(shards: &[Vec<Scored<H>>], k: usize, total: u64) -> Self {
        Frontier::new(merge_top_k(shards, k), total)
    }

    /// The retained combinations, best first.
    #[must_use]
    pub fn entries(&self) -> &[Scored<H>] {
        &self.entries
    }

    /// The K-th score at build time (0 when `complete`).
    #[must_use]
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// True iff the frontier holds the whole enumeration.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// The build-time best (head of the sorted entries).
    #[must_use]
    pub fn best(&self) -> Scored<H> {
        self.entries
            .first()
            .copied()
            .unwrap_or(Scored::NEG_INFINITY)
    }

    /// The floor check: is `rescored_best` provably the global argmax?
    ///
    /// Strict `>` — an equal score could tie a colex-earlier outside
    /// combination, so only a strict clear skips the scan.
    #[must_use]
    pub fn is_hit(&self, rescored_best: &Scored<H>) -> bool {
        self.complete || rescored_best.score > self.floor
    }

    /// Rescore every member against the current matrices.
    #[must_use]
    pub fn rescore(
        &self,
        tumor: &BitMatrix,
        normal: &BitMatrix,
        tumor_mask: Option<&[u64]>,
        alpha: Alpha,
    ) -> RescoredFrontier<H> {
        let mut best = Scored::NEG_INFINITY;
        let mut kth = u64::MAX;
        for e in &self.entries {
            let s = rescore_combo(tumor, normal, tumor_mask, &e.genes, alpha);
            best = best.max_det(s);
            kth = kth.min(s.score);
        }
        RescoredFrontier {
            best,
            kth_score: if self.entries.is_empty() { 0 } else { kth },
            rescored: self.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::top_k;

    fn scored(score: u64, g0: u32) -> Scored<2> {
        Scored {
            score,
            tp: 1,
            tn: 0,
            genes: [g0, g0 + 1],
        }
    }

    #[test]
    fn topk_matches_reduce_top_k() {
        let scores: Vec<Scored<2>> = (0..200u32)
            .map(|i| scored(u64::from(i.wrapping_mul(48271) % 97), i % 150))
            .collect();
        for k in [0usize, 1, 5, 64, 200, 300] {
            let mut acc = TopK::new(k);
            for &s in &scores {
                acc.offer(s);
            }
            assert_eq!(acc.into_sorted(), top_k(&scores, k), "k={k}");
        }
    }

    #[test]
    fn topk_floor_is_weakest_of_full_heap() {
        let mut acc = TopK::new(3);
        assert_eq!(acc.floor_score(), 0);
        for (v, g) in [(5u64, 0u32), (9, 1), (7, 2)] {
            acc.offer(scored(v, g));
        }
        assert!(acc.is_full());
        assert_eq!(acc.floor_score(), 5);
        // A stronger entry evicts the weakest and raises the floor.
        assert!(acc.offer(scored(8, 3)));
        assert_eq!(acc.floor_score(), 7);
        // A tie with the weakest loses (colex-later offered last).
        assert!(!acc.offer(scored(7, 9)));
    }

    #[test]
    fn frontier_floor_and_complete() {
        let entries = top_k(&[scored(9, 0), scored(7, 1), scored(5, 2)], 2);
        let f = Frontier::new(entries, 10);
        assert_eq!(f.floor(), 7);
        assert!(!f.complete());
        assert!(f.is_hit(&scored(8, 4)));
        assert!(!f.is_hit(&scored(7, 4)), "ties must not hit");

        let all = top_k(&[scored(9, 0), scored(7, 1)], 8);
        let c = Frontier::new(all, 2);
        assert!(c.complete());
        assert!(c.is_hit(&scored(0, 5)), "complete frontiers always hit");
    }

    #[test]
    fn rescore_combo_matches_score_combo() {
        use crate::weight::score_combo;
        let tumor = BitMatrix::from_rows(
            4,
            6,
            &[vec![0, 1, 2, 3], vec![0, 1, 2], vec![1, 2, 4], vec![5]],
        );
        let normal = BitMatrix::from_rows(4, 4, &[vec![0], vec![0, 1], vec![2], vec![]]);
        for genes in [[0u32, 1], [1, 2], [0, 3]] {
            assert_eq!(
                rescore_combo(&tumor, &normal, None, &genes, Alpha::PAPER),
                score_combo(&tumor, &normal, &genes, Alpha::PAPER),
            );
        }
        // Masking off every tumor column zeroes TP (and thus the score).
        let mask = vec![0u64; tumor.words_per_row()];
        let s = rescore_combo(&tumor, &normal, Some(&mask), &[0, 1], Alpha::PAPER);
        assert_eq!((s.tp, s.score), (0, 0));
    }

    #[test]
    fn rescore_reports_min_as_seed() {
        let tumor = BitMatrix::from_rows(3, 8, &[vec![0, 1, 2, 3], vec![0, 1], vec![0]]);
        let normal = BitMatrix::from_rows(3, 4, &[vec![], vec![], vec![]]);
        let entries = top_k(
            &[
                rescore_combo(&tumor, &normal, None, &[0, 1], Alpha::PAPER),
                rescore_combo(&tumor, &normal, None, &[0, 2], Alpha::PAPER),
            ],
            2,
        );
        let f = Frontier::new(entries, 3);
        let r = f.rescore(&tumor, &normal, None, Alpha::PAPER);
        assert_eq!(r.rescored, 2);
        assert_eq!(r.best, f.best());
        assert_eq!(
            r.kth_score,
            f.entries().iter().map(|e| e.score).min().unwrap()
        );
    }

    #[test]
    fn empty_frontier_rescore_is_identity() {
        let tumor = BitMatrix::zeros(3, 4);
        let normal = BitMatrix::zeros(3, 4);
        let f = Frontier::<2>::new(Vec::new(), 5);
        let r = f.rescore(&tumor, &normal, None, Alpha::PAPER);
        assert_eq!(r.best, Scored::NEG_INFINITY);
        assert_eq!(r.kth_score, 0);
        assert_eq!(r.rescored, 0);
    }
}
