//! Dependency-free observability: hierarchical spans, monotonic counters,
//! gauges, and a JSON-lines event stream.
//!
//! The paper's argument is quantitative — per-GPU busy/idle time, scheduler
//! overhead, memory-traffic ablations (Figs 4–6) — so the runtime needs a
//! measurement substrate rather than ad-hoc accounting per figure. This
//! module provides one with no external crates (builds stay offline):
//!
//! * [`Obs`] — a cheap cloneable handle. [`Obs::disabled`] is a no-op sink
//!   (a `None` inner; every record call is one branch), so hot paths take
//!   `&Obs` unconditionally.
//! * [`Obs::span`] — RAII wall-clock spans. Nesting is tracked per thread,
//!   so a span records its slash-joined `path` ("discover/greedy_iter").
//! * [`Obs::counter_add`] / [`Obs::gauge_set`] — a monotonic counter
//!   registry and last-value gauges, aggregated across threads.
//! * [`Obs::point`] — a named point event with typed fields; this is how
//!   per-iteration metrics (`scan_ns`, `combos_scored`, per-rank
//!   `busy_ns`/`idle_ns`, `partition_ns`, ...) enter the stream.
//! * [`Event`] — hand-rolled JSON-lines serialization and parsing, so the
//!   stream round-trips without serde.
//! * [`RunReport`] — the aggregate view consumers (the CLI, the bench
//!   figure harness) build from an event stream.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Values and events
// ---------------------------------------------------------------------------

/// A typed field value carried by an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, nanosecond durations, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, utilizations, seconds).
    F64(f64),
    /// String (names, modes).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// The value as `u64`, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed timing span.
    Span,
    /// A named metrics point (one row of per-iteration / per-rank data).
    Point,
    /// A snapshot of the counter registry.
    Counters,
}

impl EventKind {
    /// Wire name in the JSON `type` field.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Point => "point",
            EventKind::Counters => "counters",
        }
    }

    /// Parse the wire name back.
    #[must_use]
    pub fn from_wire(s: &str) -> Option<Self> {
        match s {
            "span" => Some(EventKind::Span),
            "point" => Some(EventKind::Point),
            "counters" => Some(EventKind::Counters),
            _ => None,
        }
    }
}

/// One record of the observability stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Record kind.
    pub kind: EventKind,
    /// Event name (span name, point name, or "counters").
    pub name: String,
    /// Ordered typed fields.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Look up a field by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as `u64` (missing or mistyped → `None`).
    #[must_use]
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Value::as_u64)
    }

    /// Field as `f64`.
    #[must_use]
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// Field as a string slice.
    #[must_use]
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Serialize as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        out.push_str("{\"type\":\"");
        out.push_str(self.kind.wire_name());
        out.push_str("\",\"name\":\"");
        escape_json(&self.name, &mut out);
        out.push('"');
        for (k, v) in &self.fields {
            out.push(',');
            out.push('"');
            escape_json(k, &mut out);
            out.push_str("\":");
            write_value(v, &mut out);
        }
        out.push('}');
        out
    }

    /// Parse one JSON line produced by [`Event::to_json`].
    ///
    /// # Errors
    /// Returns a description of the first syntax problem.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let pairs = parse_flat_object(line)?;
        let mut kind = None;
        let mut name = None;
        let mut fields = Vec::with_capacity(pairs.len().saturating_sub(2));
        for (k, v) in pairs {
            match (k.as_str(), &v) {
                ("type", Value::Str(s)) => {
                    kind =
                        Some(EventKind::from_wire(s).ok_or_else(|| format!("unknown type {s:?}"))?);
                }
                ("name", Value::Str(s)) => name = Some(s.clone()),
                _ => fields.push((k, v)),
            }
        }
        Ok(Event {
            kind: kind.ok_or("missing \"type\"")?,
            name: name.ok_or("missing \"name\"")?,
            fields,
        })
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // {:?} keeps a decimal point or exponent, so the parser
                // reads the token back as a float and round-trips exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Serialize a flat key/value list as one JSON object line (no trailing
/// newline) — the same shape [`Event::to_json`] writes and
/// [`parse_json_object`] reads back. The serving protocol reuses this for
/// its request/response lines so the repo carries exactly one JSON codec.
#[must_use]
pub fn json_object(pairs: &[(String, Value)]) -> String {
    let mut out = String::with_capacity(16 + 16 * pairs.len());
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, &mut out);
        out.push_str("\":");
        write_value(v, &mut out);
    }
    out.push('}');
    out
}

/// Parse a flat JSON object of scalar values (the only shape this stream —
/// and the serving wire protocol — emits). Returns the key/value pairs in
/// input order. JSON `null` parses as [`Value::F64`]`(NAN)`; consumers that
/// report ratios must pass such fields through [`finite_or_zero`].
///
/// # Errors
/// Returns a description of the first syntax problem.
pub fn parse_json_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    parse_flat_object(line)
}

/// Clamp a possibly non-finite reported ratio to something finite (0.0).
///
/// The wire format writes non-finite `f64` as `null` and parses `null`
/// back as NaN, so any ratio read from a stream can be NaN even though
/// in-process producers never emit one. Every `RunReport` ratio field is
/// routed through this so downstream arithmetic (means, JSON re-emission,
/// bench gates) never sees NaN/∞.
#[inline]
#[must_use]
pub fn finite_or_zero(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let src = line.trim();
    let mut pairs = Vec::new();
    let next_non_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices>| loop {
        match chars.next() {
            Some((_, c)) if c.is_whitespace() => {}
            other => return other,
        }
    };
    match next_non_ws(&mut chars) {
        Some((_, '{')) => {}
        _ => return Err("expected '{'".into()),
    }
    loop {
        match next_non_ws(&mut chars) {
            Some((_, '}')) => return Ok(pairs),
            Some((i, '"')) => {
                let (key, _) = parse_string_body(src, i + 1, &mut chars)?;
                match next_non_ws(&mut chars) {
                    Some((_, ':')) => {}
                    _ => return Err(format!("expected ':' after key {key:?}")),
                }
                let value = parse_value(src, &mut chars)?;
                pairs.push((key, value));
                match next_non_ws(&mut chars) {
                    Some((_, ',')) => {}
                    Some((_, '}')) => return Ok(pairs),
                    _ => return Err("expected ',' or '}'".into()),
                }
            }
            Some((_, ',')) if pairs.is_empty() => return Err("leading comma".into()),
            other => return Err(format!("unexpected token {other:?}")),
        }
    }
}

/// Consume a string body (opening quote already consumed); returns the
/// unescaped string and the index just past the closing quote.
fn parse_string_body(
    src: &str,
    _start: usize,
    chars: &mut std::iter::Peekable<std::str::CharIndices>,
) -> Result<(String, usize), String> {
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((j, '"')) => return Ok((out, j + 1)),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?} in {src:?}")),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_value(
    src: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices>,
) -> Result<Value, String> {
    // Skip whitespace.
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
    match chars.peek().copied() {
        Some((i, '"')) => {
            chars.next();
            let (s, _) = parse_string_body(src, i + 1, chars)?;
            Ok(Value::Str(s))
        }
        Some((_, 't')) => {
            expect_word(chars, "true")?;
            Ok(Value::Bool(true))
        }
        Some((_, 'f')) => {
            expect_word(chars, "false")?;
            Ok(Value::Bool(false))
        }
        Some((_, 'n')) => {
            expect_word(chars, "null")?;
            Ok(Value::F64(f64::NAN))
        }
        Some((start, c)) if c == '-' || c.is_ascii_digit() => {
            let mut end = start;
            let mut float = false;
            while let Some(&(j, c)) = chars.peek() {
                match c {
                    '0'..='9' | '-' | '+' => {}
                    '.' | 'e' | 'E' => float = true,
                    _ => break,
                }
                end = j + c.len_utf8();
                chars.next();
            }
            let tok = &src[start..end];
            if float {
                tok.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|e| format!("bad number {tok:?}: {e}"))
            } else if tok.starts_with('-') {
                tok.parse::<i64>()
                    .map(Value::I64)
                    .map_err(|e| format!("bad number {tok:?}: {e}"))
            } else {
                tok.parse::<u64>()
                    .map(Value::U64)
                    .map_err(|e| format!("bad number {tok:?}: {e}"))
            }
        }
        other => Err(format!("unexpected value start {other:?}")),
    }
}

fn expect_word(
    chars: &mut std::iter::Peekable<std::str::CharIndices>,
    word: &str,
) -> Result<(), String> {
    for expect in word.chars() {
        match chars.next() {
            Some((_, c)) if c == expect => {}
            other => return Err(format!("expected {word:?}, found {other:?}")),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The Obs handle
// ---------------------------------------------------------------------------

struct Inner {
    trace: bool,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

/// Cloneable observability handle. Disabled handles make every record call
/// a single branch, so instrumented code paths take `&Obs` unconditionally.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<String>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl Obs {
    /// A no-op sink.
    #[must_use]
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled collector.
    #[must_use]
    pub fn enabled() -> Obs {
        Obs::collecting(false)
    }

    /// An enabled collector that also prints each record to stderr as it
    /// completes (the CLI's `--trace`).
    #[must_use]
    pub fn with_trace() -> Obs {
        Obs::collecting(true)
    }

    fn collecting(trace: bool) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                trace,
                events: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether records are collected.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn record(&self, event: Event) {
        if let Some(inner) = &self.inner {
            if inner.trace {
                eprintln!("[obs] {}", event.to_json());
            }
            inner
                .events
                .lock()
                .expect("obs events poisoned")
                .push(event);
        }
    }

    /// Open a wall-clock span; it records itself on drop. Nested spans on
    /// the same thread record slash-joined paths.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard {
        if self.inner.is_some() {
            SPAN_STACK.with(|s| s.borrow_mut().push(name.to_string()));
            SpanGuard {
                obs: self.clone(),
                armed: true,
                start: Instant::now(),
            }
        } else {
            SpanGuard {
                obs: Obs::disabled(),
                armed: false,
                start: Instant::now(),
            }
        }
    }

    /// Add to a monotonic counter (creates it at zero first).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut c = inner.counters.lock().expect("obs counters poisoned");
            *c.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Set a last-value gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .gauges
                .lock()
                .expect("obs gauges poisoned")
                .insert(name.to_string(), value);
        }
    }

    /// Record a named metrics point.
    pub fn point(&self, name: &str, fields: &[(&str, Value)]) {
        if self.inner.is_some() {
            self.record(Event {
                kind: EventKind::Point,
                name: name.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Current value of one counter (0 when absent or disabled).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            *inner
                .counters
                .lock()
                .expect("obs counters poisoned")
                .get(name)
                .unwrap_or(&0)
        })
    }

    /// Snapshot of the counter registry.
    #[must_use]
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner
            .as_ref()
            .map(|inner| {
                inner
                    .counters
                    .lock()
                    .expect("obs counters poisoned")
                    .clone()
            })
            .unwrap_or_default()
    }

    /// Snapshot of recorded events (in record order).
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|inner| inner.events.lock().expect("obs events poisoned").clone())
            .unwrap_or_default()
    }

    /// The full stream as JSON lines: every event, then one `counters`
    /// snapshot (counters as `u64` fields, gauges as `f64` fields).
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut out = String::new();
        for e in inner.events.lock().expect("obs events poisoned").iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        let mut fields: Vec<(String, Value)> = inner
            .counters
            .lock()
            .expect("obs counters poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect();
        fields.extend(
            inner
                .gauges
                .lock()
                .expect("obs gauges poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), Value::F64(*v))),
        );
        let snapshot = Event {
            kind: EventKind::Counters,
            name: "counters".to_string(),
            fields,
        };
        out.push_str(&snapshot.to_json());
        out.push('\n');
        out
    }

    /// Write the JSON-lines stream to a file.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json_lines(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_lines())
    }
}

/// RAII guard returned by [`Obs::span`].
pub struct SpanGuard {
    obs: Obs,
    armed: bool,
    start: Instant,
}

impl SpanGuard {
    /// Elapsed time so far, nanoseconds.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let dur_ns = self.elapsed_ns();
        let (name, path) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let name = stack.pop().unwrap_or_default();
            let mut path = stack.join("/");
            if path.is_empty() {
                path = name.clone();
            } else {
                path.push('/');
                path.push_str(&name);
            }
            (name, path)
        });
        self.obs.record(Event {
            kind: EventKind::Span,
            name,
            fields: vec![
                ("path".to_string(), Value::Str(path)),
                ("dur_ns".to_string(), Value::U64(dur_ns)),
            ],
        });
    }
}

// ---------------------------------------------------------------------------
// RunReport: the aggregate consumers build from the stream
// ---------------------------------------------------------------------------

/// One greedy iteration's metrics (from `greedy_iter` points).
#[derive(Clone, Debug, PartialEq)]
pub struct GreedyIterReport {
    /// Iteration index.
    pub iter: u64,
    /// Wall time of the argmax scan, nanoseconds.
    pub scan_ns: u64,
    /// Combinations scored by the scan.
    pub combos_scored: u64,
    /// Scan throughput, combinations per second.
    pub combos_per_sec: f64,
    /// Tumor samples newly covered.
    pub newly_covered: u64,
    /// Tumor samples still uncovered.
    pub remaining: u64,
    /// Combinations the scan actually evaluated (≤ `combos_scored` when
    /// branch-and-bound pruning is on; 0 on streams from older versions).
    pub scan_scored: u64,
    /// Combinations eliminated without scoring by the F upper bound.
    pub pruned_combos: u64,
    /// Subtrees eliminated by the F upper bound.
    pub pruned_subtrees: u64,
    /// λ-blocks dispatched by the work-stealing cursor.
    pub steal_blocks: u64,
    /// Blocks beyond each worker's first.
    pub steals: u64,
    /// 1 when the lazy-greedy frontier proved the argmax and the full scan
    /// was skipped (0 on full rescans and on streams from older versions).
    pub frontier_hit: u64,
    /// Frontier members rescored this iteration.
    pub frontier_rescored: u64,
    /// All-zero words the sparse scan skipped (0 on dense scans and on
    /// streams from older versions).
    pub words_skipped: u64,
    /// Level-0 block-kernel invocations (0 with `--no-block-sweep` and on
    /// streams from older versions).
    pub block_sweeps: u64,
    /// Candidate rows scored through the block kernels.
    pub swept_rows: u64,
}

/// The instance-reduction summary (from the `kernelize` point).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelizeReport {
    /// Reduction wall time, nanoseconds.
    pub kernelize_ns: u64,
    /// Genes before reduction.
    pub orig_genes: u64,
    /// Genes surviving reduction.
    pub kept_genes: u64,
    /// Genes removed for an all-zero tumor row.
    pub useless_genes: u64,
    /// Genes removed by the ≥H-dominators rule.
    pub dominated_genes: u64,
    /// Uncoverable tumor columns removed.
    pub zero_tumor_cols: u64,
    /// All-zero normal columns removed (uniform TN shift).
    pub zero_normal_cols: u64,
    /// All-ones normal columns removed (no shift).
    pub ones_normal_cols: u64,
    /// All-ones tumor columns detected (not removed).
    pub forced_tumor_cols: u64,
    /// Duplicate nonzero tumor columns detected (not removed).
    pub dup_tumor_cols: u64,
    /// Fraction of genes removed.
    pub gene_reduction: f64,
}

/// One rank's aggregated busy/idle attribution (from `rank` points).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankReport {
    /// Busy time (concurrent-kernel wall + communication), nanoseconds.
    pub busy_ns: u64,
    /// Idle time, nanoseconds.
    pub idle_ns: u64,
    /// Communication share of busy time, nanoseconds.
    pub comm_ns: u64,
    /// Summed per-GPU kernel time of the rank, nanoseconds (exceeds wall
    /// time when the rank's GPUs run concurrently).
    pub kernel_ns: u64,
}

/// One injected fault (from `fault` points).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultReport {
    /// Fault kind (`rank_kill`, `msg_drop`, `ckpt_bitflip`, `node_failure`, …).
    pub kind: String,
    /// Iteration the fault fired in.
    pub iter: u64,
}

/// One recovery event (from `recovery` points): a driver re-execution after
/// a failed iteration attempt, a checkpoint fallback to the backup copy, or
/// a modeled-failure cost summary.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Recovery kind: `rank_recovery` (driver re-execution), `ckpt_fallback`,
    /// or `modeled`.
    pub kind: String,
    /// Iteration the recovery happened in (0 for stream-level events).
    pub iter: u64,
    /// Ranks newly declared dead by this recovery step.
    pub dead: u64,
    /// Ranks still alive afterwards.
    pub survivors: u64,
    /// λ-work (combinations) discarded and re-executed.
    pub re_executed_combos: u64,
}

/// One membership epoch (from `membership` points): ranks admitted to the
/// roster at an iteration barrier, and what the admission moved.
#[derive(Clone, Debug, PartialEq)]
pub struct MembershipReport {
    /// Iteration barrier the epoch began at.
    pub iter: u64,
    /// Epoch number after the admission (1-based).
    pub epoch: u64,
    /// Ranks admitted in this epoch.
    pub joined: u64,
    /// Roster size after the admission.
    pub roster: u64,
    /// 1 when the join was incremental (boundary slab moves + frontier
    /// shard transfer); 0 when it degraded to a full re-shard.
    pub incremental: bool,
    /// Boundary slabs moved to the joiners.
    pub slab_moves: u64,
    /// Total λ-area of the moved slabs.
    pub moved_area: u64,
    /// Frontier records shipped to the joiners instead of rescanned.
    pub frontier_records_moved: u64,
}

/// Per-tenant admission totals, from the `serve_tenant` points the server
/// emits at shutdown (one per tenant seen by admission control).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant id (the wire's `tenant` field).
    pub tenant: u64,
    /// Requests that passed the tenant's fair-share gate.
    pub admitted: u64,
    /// Requests shed at admission because the tenant's budget was spent.
    pub shed: u64,
}

/// Aggregated serving-layer metrics, built from per-batch `serve_batch`
/// points and the one `serve_summary` point the server emits at shutdown.
///
/// All ratio accessors are zero-guarded: an empty or summary-less stream
/// reports 0.0 everywhere, never NaN.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    /// Requests admitted or shed (everything that reached admission).
    pub requests: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests rejected by shedding — over-budget tenants plus queue-full
    /// overflow.
    pub shed: u64,
    /// The subset of [`Self::shed`] rejected by per-tenant admission
    /// control, before any queue was probed.
    pub admission_shed: u64,
    /// Requests failed with an error response.
    pub errors: u64,
    /// Ok responses served from the signature cache.
    pub cache_hits: u64,
    /// Dead-generation cache entries purged after registry hot swaps.
    pub stale_evictions: u64,
    /// Scoring batches executed.
    pub batches: u64,
    /// Samples scored across all batches.
    pub batched_samples: u64,
    /// Configured batch-size ceiling (denominator of [`Self::mean_batch_fill`]).
    pub batch_max: u64,
    /// Deepest queue observed at batch formation.
    pub max_queue_depth: u64,
    /// Front-end connections accepted over the serving window.
    pub conn_accepted: u64,
    /// Front-end connections closed (drained) over the serving window.
    pub conn_closed: u64,
    /// Binary frames decoded by the front end.
    pub frames_decoded: u64,
    /// Registry hot swaps published while serving.
    pub swaps: u64,
    /// Swaps that arrived as publish control frames (discover→serve).
    pub publishes: u64,
    /// Reactor event-loop iterations (from `serve_reactor` points).
    pub reactor_loops: u64,
    /// Nanoseconds the reactor spent processing ready events (vs parked
    /// in the poller) — numerator of [`Self::mean_reactor_loop_ns`].
    pub reactor_busy_ns: u64,
    /// Median request latency, nanoseconds.
    pub p50_latency_ns: u64,
    /// 95th-percentile request latency, nanoseconds.
    pub p95_latency_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_latency_ns: u64,
    /// Sustained ok-responses per second over the serving window.
    pub throughput_rps: f64,
    /// Per-tenant admission totals, in tenant order (empty when admission
    /// control is disabled).
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// Fraction of ok responses served from the cache (0.0 with no traffic).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            finite_or_zero(self.cache_hits as f64 / self.ok as f64)
        }
    }

    /// Mean batch occupancy relative to the configured ceiling
    /// (0.0 with no batches or an unknown ceiling).
    #[must_use]
    pub fn mean_batch_fill(&self) -> f64 {
        let denom = self.batches.saturating_mul(self.batch_max);
        if denom == 0 {
            0.0
        } else {
            finite_or_zero(self.batched_samples as f64 / denom as f64)
        }
    }

    /// Fraction of admitted requests shed (0.0 with no traffic).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            finite_or_zero(self.shed as f64 / self.requests as f64)
        }
    }

    /// Mean busy time per reactor event-loop iteration, nanoseconds
    /// (0.0 for in-process serving with no reactor).
    #[must_use]
    pub fn mean_reactor_loop_ns(&self) -> f64 {
        if self.reactor_loops == 0 {
            0.0
        } else {
            finite_or_zero(self.reactor_busy_ns as f64 / self.reactor_loops as f64)
        }
    }
}

/// Aggregated view of one observability stream.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Greedy iterations in order.
    pub greedy_iters: Vec<GreedyIterReport>,
    /// Per-rank totals across iterations, indexed by rank.
    pub ranks: Vec<RankReport>,
    /// Scheduler partition times, nanoseconds, in call order.
    pub partition_ns: Vec<u64>,
    /// Checkpoint save durations, nanoseconds.
    pub checkpoint_ns: Vec<u64>,
    /// Iteration makespans (from `timeline_iter` points), nanoseconds.
    pub makespan_ns: Vec<u64>,
    /// Injected faults in firing order (empty for fault-free runs).
    pub faults: Vec<FaultReport>,
    /// Recovery events in order (empty for fault-free runs).
    pub recoveries: Vec<RecoveryReport>,
    /// Membership epochs in order (empty for fixed-roster runs).
    pub memberships: Vec<MembershipReport>,
    /// Serving-layer aggregates (all-zero for non-serving runs).
    pub serve: ServeReport,
    /// Instance-reduction summary (None when kernelization did not run).
    pub kernelize: Option<KernelizeReport>,
    /// Final counter registry.
    pub counters: BTreeMap<String, u64>,
}

impl RunReport {
    /// Build from parsed events.
    #[must_use]
    pub fn from_events(events: &[Event]) -> RunReport {
        let mut r = RunReport::default();
        for e in events {
            match (e.kind, e.name.as_str()) {
                (EventKind::Point, "greedy_iter") => {
                    r.greedy_iters.push(GreedyIterReport {
                        iter: e.u64("iter").unwrap_or(0),
                        scan_ns: e.u64("scan_ns").unwrap_or(0),
                        combos_scored: e.u64("combos_scored").unwrap_or(0),
                        // `null` on the wire parses as NaN; keep the report
                        // finite (regression: NaN used to flow through here).
                        combos_per_sec: finite_or_zero(e.f64("combos_per_sec").unwrap_or(0.0)),
                        newly_covered: e.u64("newly_covered").unwrap_or(0),
                        remaining: e.u64("remaining").unwrap_or(0),
                        scan_scored: e.u64("scan_scored").unwrap_or(0),
                        pruned_combos: e.u64("pruned_combos").unwrap_or(0),
                        pruned_subtrees: e.u64("pruned_subtrees").unwrap_or(0),
                        steal_blocks: e.u64("steal_blocks").unwrap_or(0),
                        steals: e.u64("steals").unwrap_or(0),
                        frontier_hit: e.u64("frontier_hit").unwrap_or(0),
                        frontier_rescored: e.u64("frontier_rescored").unwrap_or(0),
                        words_skipped: e.u64("words_skipped").unwrap_or(0),
                        block_sweeps: e.u64("block_sweeps").unwrap_or(0),
                        swept_rows: e.u64("swept_rows").unwrap_or(0),
                    });
                }
                (EventKind::Point, "kernelize") => {
                    r.kernelize = Some(KernelizeReport {
                        kernelize_ns: e.u64("kernelize_ns").unwrap_or(0),
                        orig_genes: e.u64("orig_genes").unwrap_or(0),
                        kept_genes: e.u64("kept_genes").unwrap_or(0),
                        useless_genes: e.u64("useless_genes").unwrap_or(0),
                        dominated_genes: e.u64("dominated_genes").unwrap_or(0),
                        zero_tumor_cols: e.u64("zero_tumor_cols").unwrap_or(0),
                        zero_normal_cols: e.u64("zero_normal_cols").unwrap_or(0),
                        ones_normal_cols: e.u64("ones_normal_cols").unwrap_or(0),
                        forced_tumor_cols: e.u64("forced_tumor_cols").unwrap_or(0),
                        dup_tumor_cols: e.u64("dup_tumor_cols").unwrap_or(0),
                        gene_reduction: finite_or_zero(e.f64("gene_reduction").unwrap_or(0.0)),
                    });
                }
                (EventKind::Point, "rank") => {
                    let rank = e.u64("rank").unwrap_or(0) as usize;
                    if r.ranks.len() <= rank {
                        r.ranks.resize(rank + 1, RankReport::default());
                    }
                    let slot = &mut r.ranks[rank];
                    slot.busy_ns += e.u64("busy_ns").unwrap_or(0);
                    slot.idle_ns += e.u64("idle_ns").unwrap_or(0);
                    slot.comm_ns += e.u64("comm_ns").unwrap_or(0);
                    slot.kernel_ns += e.u64("kernel_ns").unwrap_or(0);
                }
                (EventKind::Point, "sched_partition") => {
                    r.partition_ns.push(e.u64("partition_ns").unwrap_or(0));
                }
                (EventKind::Point, "checkpoint") => {
                    r.checkpoint_ns.push(e.u64("save_ns").unwrap_or(0));
                }
                (EventKind::Point, "timeline_iter") => {
                    r.makespan_ns.push(e.u64("makespan_ns").unwrap_or(0));
                }
                (EventKind::Point, "fault") => {
                    r.faults.push(FaultReport {
                        kind: e.str("kind").unwrap_or("unknown").to_string(),
                        iter: e.u64("iter").unwrap_or(0),
                    });
                }
                (EventKind::Point, "recovery") => {
                    // Driver re-execution points carry no `kind` field.
                    r.recoveries.push(RecoveryReport {
                        kind: e.str("kind").unwrap_or("rank_recovery").to_string(),
                        iter: e.u64("iter").unwrap_or(0),
                        dead: e.u64("dead").unwrap_or(0),
                        survivors: e.u64("survivors").unwrap_or(0),
                        re_executed_combos: e.u64("re_executed_combos").unwrap_or(0),
                    });
                }
                (EventKind::Point, "membership") => {
                    r.memberships.push(MembershipReport {
                        iter: e.u64("iter").unwrap_or(0),
                        epoch: e.u64("epoch").unwrap_or(0),
                        joined: e.u64("joined").unwrap_or(0),
                        roster: e.u64("roster").unwrap_or(0),
                        incremental: e.u64("incremental").unwrap_or(0) != 0,
                        slab_moves: e.u64("slab_moves").unwrap_or(0),
                        moved_area: e.u64("moved_area").unwrap_or(0),
                        frontier_records_moved: e.u64("frontier_records_moved").unwrap_or(0),
                    });
                }
                (EventKind::Point, "serve_batch") => {
                    r.serve.batches += 1;
                    r.serve.batched_samples += e.u64("batch_size").unwrap_or(0);
                    r.serve.max_queue_depth = r
                        .serve
                        .max_queue_depth
                        .max(e.u64("queue_depth").unwrap_or(0));
                }
                (EventKind::Point, "serve_summary") => {
                    r.serve.requests = e.u64("requests").unwrap_or(0);
                    r.serve.ok = e.u64("ok").unwrap_or(0);
                    r.serve.shed = e.u64("shed").unwrap_or(0);
                    r.serve.admission_shed = e.u64("admission_shed").unwrap_or(0);
                    r.serve.errors = e.u64("errors").unwrap_or(0);
                    r.serve.cache_hits = e.u64("cache_hits").unwrap_or(0);
                    r.serve.stale_evictions = e.u64("stale_evictions").unwrap_or(0);
                    r.serve.batch_max = e.u64("batch_max").unwrap_or(0);
                    r.serve.conn_accepted = e.u64("conn_accepted").unwrap_or(0);
                    r.serve.conn_closed = e.u64("conn_closed").unwrap_or(0);
                    r.serve.frames_decoded = e.u64("frames_decoded").unwrap_or(0);
                    r.serve.swaps = e.u64("swaps").unwrap_or(0);
                    r.serve.publishes = e.u64("publishes").unwrap_or(0);
                    r.serve.p50_latency_ns = e.u64("p50_latency_ns").unwrap_or(0);
                    r.serve.p95_latency_ns = e.u64("p95_latency_ns").unwrap_or(0);
                    r.serve.p99_latency_ns = e.u64("p99_latency_ns").unwrap_or(0);
                    r.serve.throughput_rps = finite_or_zero(e.f64("throughput_rps").unwrap_or(0.0));
                }
                (EventKind::Point, "serve_tenant") => {
                    // One point per tenant; an idempotent second shutdown
                    // re-emits the same tenants, so replace, don't append.
                    let tenant = e.u64("tenant").unwrap_or(0);
                    let entry = TenantReport {
                        tenant,
                        admitted: e.u64("admitted").unwrap_or(0),
                        shed: e.u64("shed").unwrap_or(0),
                    };
                    match r.serve.tenants.iter_mut().find(|t| t.tenant == tenant) {
                        Some(slot) => *slot = entry,
                        None => r.serve.tenants.push(entry),
                    }
                }
                (EventKind::Point, "serve_reactor") => {
                    r.serve.reactor_loops += e.u64("loops").unwrap_or(0);
                    r.serve.reactor_busy_ns += e.u64("busy_ns").unwrap_or(0);
                }
                (EventKind::Counters, _) => {
                    for (k, v) in &e.fields {
                        if let Some(n) = v.as_u64() {
                            r.counters.insert(k.clone(), n);
                        }
                    }
                }
                _ => {}
            }
        }
        r
    }

    /// Build from a JSON-lines stream (blank lines skipped).
    ///
    /// # Errors
    /// Returns the first line that fails to parse.
    pub fn from_json_lines(text: &str) -> Result<RunReport, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(Event::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(RunReport::from_events(&events))
    }

    /// Total scan time across greedy iterations, nanoseconds.
    #[must_use]
    pub fn total_scan_ns(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.scan_ns).sum()
    }

    /// Total combinations scored across greedy iterations.
    #[must_use]
    pub fn total_combos_scored(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.combos_scored).sum()
    }

    /// Total combinations the F upper bound eliminated without scoring.
    #[must_use]
    pub fn total_pruned_combos(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.pruned_combos).sum()
    }

    /// Fraction of enumerated combinations pruned across the run (0.0 when
    /// no greedy iterations were recorded).
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.total_combos_scored();
        if total == 0 {
            0.0
        } else {
            self.total_pruned_combos() as f64 / total as f64
        }
    }

    /// Total work-stealing blocks dispatched across greedy iterations.
    #[must_use]
    pub fn total_steal_blocks(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.steal_blocks).sum()
    }

    /// Iterations whose argmax the lazy-greedy frontier proved without a
    /// full scan.
    #[must_use]
    pub fn frontier_hits(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.frontier_hit).sum()
    }

    /// Iterations that fell back to (or started with) a full scan.
    #[must_use]
    pub fn full_rescans(&self) -> u64 {
        self.greedy_iters.len() as u64 - self.frontier_hits()
    }

    /// Total frontier members rescored across iterations.
    #[must_use]
    pub fn total_frontier_rescored(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.frontier_rescored).sum()
    }

    /// Total all-zero words the sparse scan skipped across iterations.
    #[must_use]
    pub fn total_words_skipped(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.words_skipped).sum()
    }

    /// Total level-0 block-kernel invocations across iterations.
    #[must_use]
    pub fn total_block_sweeps(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.block_sweeps).sum()
    }

    /// Total candidate rows scored through the block kernels.
    #[must_use]
    pub fn total_swept_rows(&self) -> u64 {
        self.greedy_iters.iter().map(|i| i.swept_rows).sum()
    }

    /// Mean rows per block-kernel invocation (0.0 when sweeping never ran,
    /// e.g. `--no-block-sweep` or streams from older versions).
    #[must_use]
    pub fn mean_rows_per_sweep(&self) -> f64 {
        finite_or_zero(self.total_swept_rows() as f64 / self.total_block_sweeps() as f64)
    }

    /// Genes removed by kernelization (0 when it did not run).
    #[must_use]
    pub fn genes_removed(&self) -> u64 {
        self.kernelize
            .as_ref()
            .map_or(0, |k| k.useless_genes + k.dominated_genes)
    }

    /// Fraction of iterations the frontier skipped the full scan (0.0 on
    /// empty runs).
    #[must_use]
    pub fn frontier_hit_rate(&self) -> f64 {
        finite_or_zero(self.frontier_hits() as f64 / self.greedy_iters.len() as f64)
    }

    /// Share of scoring work done by cheap frontier rescoring rather than
    /// scan evaluation (0.0 on empty runs).
    #[must_use]
    pub fn frontier_rescore_fraction(&self) -> f64 {
        let rescored = self.total_frontier_rescored();
        let scanned: u64 = self.greedy_iters.iter().map(|i| i.scan_scored).sum();
        finite_or_zero(rescored as f64 / (rescored + scanned) as f64)
    }

    /// Rank busy-time imbalance: max busy / mean busy (1.0 = balanced,
    /// 0.0 when no rank data). This is the Fig 4 quantity.
    #[must_use]
    pub fn rank_imbalance(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let busy: Vec<f64> = self.ranks.iter().map(|r| r.busy_ns as f64).collect();
        let max = busy.iter().copied().fold(0.0f64, f64::max);
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Mean rank utilization: busy / (busy + idle), 0.0 without rank data.
    #[must_use]
    pub fn mean_rank_utilization(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .ranks
            .iter()
            .map(|r| {
                let denom = (r.busy_ns + r.idle_ns) as f64;
                if denom == 0.0 {
                    0.0
                } else {
                    r.busy_ns as f64 / denom
                }
            })
            .sum();
        total / self.ranks.len() as f64
    }

    /// Total λ-work (combinations) discarded and re-executed by recovery.
    #[must_use]
    pub fn re_executed_combos(&self) -> u64 {
        self.recoveries.iter().map(|r| r.re_executed_combos).sum()
    }

    /// Ranks declared dead across the run.
    #[must_use]
    pub fn dead_ranks(&self) -> u64 {
        self.recoveries
            .iter()
            .filter(|r| r.kind == "rank_recovery")
            .map(|r| r.dead)
            .sum()
    }

    /// Ranks admitted to the roster mid-run across all membership epochs.
    #[must_use]
    pub fn joined_ranks(&self) -> u64 {
        self.memberships.iter().map(|m| m.joined).sum()
    }

    /// Membership epochs begun during the run.
    #[must_use]
    pub fn membership_epochs(&self) -> u64 {
        self.memberships.len() as u64
    }

    /// Frontier records shipped to joiners instead of being rescanned.
    #[must_use]
    pub fn frontier_records_moved(&self) -> u64 {
        self.memberships
            .iter()
            .map(|m| m.frontier_records_moved)
            .sum()
    }

    /// Checkpoint loads that fell back to the backup copy.
    #[must_use]
    pub fn ckpt_fallbacks(&self) -> u64 {
        self.recoveries
            .iter()
            .filter(|r| r.kind == "ckpt_fallback")
            .count() as u64
    }

    /// Message retransmissions performed by the fault-tolerant collectives
    /// (from the `ft.retransmits` counter; 0 on clean runs).
    #[must_use]
    pub fn retransmits(&self) -> u64 {
        self.counters.get("ft.retransmits").copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        obs.counter_add("x", 5);
        obs.point("p", &[("a", Value::U64(1))]);
        {
            let _s = obs.span("outer");
        }
        assert!(!obs.is_enabled());
        assert_eq!(obs.counter("x"), 0);
        assert!(obs.events().is_empty());
        assert!(obs.to_json_lines().is_empty());
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let obs = Obs::enabled();
        {
            let _outer = obs.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = obs.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let events = obs.events();
        assert_eq!(events.len(), 2);
        // Inner drops first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(
            events[0].get("path").unwrap().as_str().unwrap(),
            "outer/inner"
        );
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].get("path").unwrap().as_str().unwrap(), "outer");
        let inner_ns = events[0].u64("dur_ns").unwrap();
        let outer_ns = events[1].u64("dur_ns").unwrap();
        assert!(inner_ns > 0);
        assert!(outer_ns >= inner_ns, "outer {outer_ns} < inner {inner_ns}");
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let obs = Obs::enabled();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let obs = obs.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        obs.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(obs.counter("hits"), 8000);
        assert_eq!(obs.counters().get("hits"), Some(&8000));
    }

    #[test]
    fn json_lines_round_trip() {
        let obs = Obs::enabled();
        obs.point(
            "greedy_iter",
            &[
                ("iter", Value::U64(0)),
                ("scan_ns", Value::U64(123_456)),
                ("combos_scored", Value::U64(19_411)),
                ("combos_per_sec", Value::F64(157_234.5)),
                ("exclusion", Value::Str("BitSplice".to_string())),
                ("capped", Value::Bool(false)),
            ],
        );
        obs.counter_add("greedy.iterations", 1);
        obs.gauge_set("sched.imbalance", 1.0625);
        let text = obs.to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back = Event::from_json(lines[0]).unwrap();
        assert_eq!(back, obs.events()[0]);
        let snap = Event::from_json(lines[1]).unwrap();
        assert_eq!(snap.kind, EventKind::Counters);
        assert_eq!(snap.u64("greedy.iterations"), Some(1));
        assert_eq!(snap.f64("sched.imbalance"), Some(1.0625));
    }

    #[test]
    fn json_escaping_round_trips() {
        let e = Event {
            kind: EventKind::Point,
            name: "weird \"name\"\twith\nstuff\\".to_string(),
            fields: vec![("k\u{1}".to_string(), Value::Str("v\"\\\n".to_string()))],
        };
        let back = Event::from_json(&e.to_json()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(Event::from_json("").is_err());
        assert!(Event::from_json("{").is_err());
        assert!(Event::from_json("{\"type\":\"span\"}").is_err());
        assert!(Event::from_json("{\"name\":\"x\",\"type\":\"nope\"}").is_err());
        assert!(Event::from_json("{\"type\":\"span\",\"name\":\"x\",\"v\":}").is_err());
    }

    #[test]
    fn run_report_aggregates_stream() {
        let obs = Obs::enabled();
        obs.point(
            "greedy_iter",
            &[
                ("iter", Value::U64(0)),
                ("scan_ns", Value::U64(1000)),
                ("combos_scored", Value::U64(500)),
                ("combos_per_sec", Value::F64(5e8)),
                ("newly_covered", Value::U64(40)),
                ("remaining", Value::U64(10)),
                ("block_sweeps", Value::U64(30)),
                ("swept_rows", Value::U64(450)),
            ],
        );
        obs.point(
            "greedy_iter",
            &[
                ("iter", Value::U64(1)),
                ("scan_ns", Value::U64(800)),
                ("combos_scored", Value::U64(500)),
                ("combos_per_sec", Value::F64(6.25e8)),
                ("newly_covered", Value::U64(10)),
                ("remaining", Value::U64(0)),
                ("block_sweeps", Value::U64(20)),
                ("swept_rows", Value::U64(350)),
            ],
        );
        for (rank, busy, idle) in [(0u64, 900u64, 100u64), (1, 600, 400)] {
            obs.point(
                "rank",
                &[
                    ("iter", Value::U64(0)),
                    ("rank", Value::U64(rank)),
                    ("busy_ns", Value::U64(busy)),
                    ("idle_ns", Value::U64(idle)),
                    ("comm_ns", Value::U64(5)),
                ],
            );
        }
        obs.point("sched_partition", &[("partition_ns", Value::U64(77))]);
        obs.point(
            "timeline_iter",
            &[("iter", Value::U64(0)), ("makespan_ns", Value::U64(1000))],
        );
        obs.counter_add("greedy.combos_scored", 1000);

        let report = RunReport::from_json_lines(&obs.to_json_lines()).unwrap();
        assert_eq!(report.greedy_iters.len(), 2);
        assert_eq!(report.total_scan_ns(), 1800);
        assert_eq!(report.total_combos_scored(), 1000);
        assert_eq!(report.ranks.len(), 2);
        assert_eq!(report.ranks[0].busy_ns, 900);
        assert_eq!(report.partition_ns, vec![77]);
        assert_eq!(report.makespan_ns, vec![1000]);
        assert_eq!(report.counters.get("greedy.combos_scored"), Some(&1000));
        let imb = report.rank_imbalance();
        assert!((imb - 1.2).abs() < 1e-12, "imbalance {imb}");
        let util = report.mean_rank_utilization();
        assert!((util - 0.75).abs() < 1e-12, "utilization {util}");
        assert_eq!(report.total_block_sweeps(), 50);
        assert_eq!(report.total_swept_rows(), 800);
        let rps = report.mean_rows_per_sweep();
        assert!((rps - 16.0).abs() < 1e-12, "rows/sweep {rps}");
    }

    #[test]
    fn rows_per_sweep_is_zero_without_sweeps() {
        // Streams from builds before block sweeping (or runs with
        // --no-block-sweep) have no sweep fields; the ratio must stay 0.0,
        // not NaN.
        let obs = Obs::enabled();
        obs.point(
            "greedy_iter",
            &[("iter", Value::U64(0)), ("scan_ns", Value::U64(5))],
        );
        let report = RunReport::from_json_lines(&obs.to_json_lines()).unwrap();
        assert_eq!(report.total_block_sweeps(), 0);
        assert_eq!(report.mean_rows_per_sweep(), 0.0);
    }

    #[test]
    fn run_report_aggregates_faults_and_recoveries() {
        let obs = Obs::enabled();
        obs.point(
            "fault",
            &[
                ("kind", Value::Str("rank_kill".to_string())),
                ("iter", Value::U64(2)),
                ("rank", Value::U64(1)),
            ],
        );
        obs.point(
            "recovery",
            &[
                ("iter", Value::U64(2)),
                ("dead", Value::U64(1)),
                ("survivors", Value::U64(3)),
                ("re_executed_combos", Value::U64(4000)),
            ],
        );
        obs.point(
            "recovery",
            &[
                ("kind", Value::Str("ckpt_fallback".to_string())),
                ("error", Value::Str("bad crc".to_string())),
            ],
        );
        obs.counter_add("ft.retransmits", 3);

        let report = RunReport::from_json_lines(&obs.to_json_lines()).unwrap();
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].kind, "rank_kill");
        assert_eq!(report.faults[0].iter, 2);
        assert_eq!(report.recoveries.len(), 2);
        assert_eq!(report.recoveries[0].kind, "rank_recovery");
        assert_eq!(report.recoveries[0].survivors, 3);
        assert_eq!(report.re_executed_combos(), 4000);
        assert_eq!(report.dead_ranks(), 1);
        assert_eq!(report.ckpt_fallbacks(), 1);
        assert_eq!(report.retransmits(), 3);

        // A fault-free stream leaves the new fields empty.
        let clean = RunReport::from_events(&[]);
        assert!(clean.faults.is_empty() && clean.recoveries.is_empty());
        assert_eq!(clean.re_executed_combos(), 0);
        assert_eq!(clean.retransmits(), 0);
    }

    #[test]
    fn run_report_aggregates_membership_epochs() {
        let obs = Obs::enabled();
        obs.point(
            "membership",
            &[
                ("iter", Value::U64(1)),
                ("epoch", Value::U64(1)),
                ("joined", Value::U64(2)),
                ("roster", Value::U64(6)),
                ("incremental", Value::U64(1)),
                ("slab_moves", Value::U64(4)),
                ("moved_area", Value::U64(12_000)),
                ("frontier_records_moved", Value::U64(9)),
            ],
        );
        obs.point(
            "membership",
            &[
                ("iter", Value::U64(3)),
                ("epoch", Value::U64(2)),
                ("joined", Value::U64(1)),
                ("roster", Value::U64(7)),
                ("incremental", Value::U64(0)),
            ],
        );
        let report = RunReport::from_json_lines(&obs.to_json_lines()).unwrap();
        assert_eq!(report.membership_epochs(), 2);
        assert_eq!(report.joined_ranks(), 3);
        assert_eq!(report.frontier_records_moved(), 9);
        assert!(report.memberships[0].incremental);
        assert_eq!(report.memberships[0].slab_moves, 4);
        assert!(!report.memberships[1].incremental, "degraded join");
        // Missing fields parse defensively to zero, never panic.
        assert_eq!(report.memberships[1].moved_area, 0);
        let clean = RunReport::from_events(&[]);
        assert_eq!(clean.membership_epochs(), 0);
        assert_eq!(clean.joined_ranks(), 0);
    }

    #[test]
    fn run_report_sanitizes_non_finite_ratios() {
        // Regression: non-finite f64 serialize as `null`, parse back as
        // NaN, and used to flow straight into GreedyIterReport — any
        // mean/sum over iterations then went NaN too.
        let stream = concat!(
            "{\"type\":\"point\",\"name\":\"greedy_iter\",\"iter\":0,",
            "\"scan_ns\":0,\"combos_scored\":0,\"combos_per_sec\":null}\n",
        );
        let report = RunReport::from_json_lines(stream).unwrap();
        assert_eq!(report.greedy_iters.len(), 1);
        let cps = report.greedy_iters[0].combos_per_sec;
        assert!(cps.is_finite(), "combos_per_sec not finite: {cps}");
        assert_eq!(cps, 0.0);

        // The round trip really does produce `null` for non-finite input.
        let obs = Obs::enabled();
        obs.point("greedy_iter", &[("combos_per_sec", Value::F64(f64::NAN))]);
        assert!(obs.to_json_lines().contains("\"combos_per_sec\":null"));
        let back = RunReport::from_json_lines(&obs.to_json_lines()).unwrap();
        assert_eq!(back.greedy_iters[0].combos_per_sec, 0.0);
    }

    #[test]
    fn empty_run_report_ratios_are_finite() {
        let r = RunReport::from_events(&[]);
        for (name, v) in [
            ("pruned_fraction", r.pruned_fraction()),
            ("rank_imbalance", r.rank_imbalance()),
            ("mean_rank_utilization", r.mean_rank_utilization()),
            ("cache_hit_rate", r.serve.cache_hit_rate()),
            ("mean_batch_fill", r.serve.mean_batch_fill()),
            ("shed_rate", r.serve.shed_rate()),
            ("throughput_rps", r.serve.throughput_rps),
            ("frontier_hit_rate", r.frontier_hit_rate()),
            ("frontier_rescore_fraction", r.frontier_rescore_fraction()),
        ] {
            assert!(v.is_finite(), "{name} not finite on empty run: {v}");
            assert_eq!(v, 0.0, "{name} must be 0.0 on an empty run");
        }
        // Rank data present but all-zero must also stay finite.
        let zeroed = RunReport {
            ranks: vec![RankReport::default(); 2],
            ..RunReport::default()
        };
        assert!(zeroed.rank_imbalance().is_finite());
        assert!(zeroed.mean_rank_utilization().is_finite());
    }

    #[test]
    fn run_report_aggregates_frontier_counters() {
        let obs = Obs::enabled();
        obs.point(
            "greedy_iter",
            &[
                ("iter", Value::U64(0)),
                ("scan_scored", Value::U64(100)),
                ("frontier_hit", Value::U64(0)),
                ("frontier_rescored", Value::U64(0)),
            ],
        );
        obs.point(
            "greedy_iter",
            &[
                ("iter", Value::U64(1)),
                ("scan_scored", Value::U64(0)),
                ("frontier_hit", Value::U64(1)),
                ("frontier_rescored", Value::U64(25)),
            ],
        );
        let r = RunReport::from_json_lines(&obs.to_json_lines()).unwrap();
        assert_eq!(r.frontier_hits(), 1);
        assert_eq!(r.full_rescans(), 1);
        assert_eq!(r.total_frontier_rescored(), 25);
        assert!((r.frontier_hit_rate() - 0.5).abs() < 1e-12);
        assert!((r.frontier_rescore_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn run_report_aggregates_serve_points() {
        let obs = Obs::enabled();
        for (size, depth) in [(8u64, 3u64), (6, 12), (2, 0)] {
            obs.point(
                "serve_batch",
                &[
                    ("batch_size", Value::U64(size)),
                    ("queue_depth", Value::U64(depth)),
                ],
            );
        }
        obs.point(
            "serve_summary",
            &[
                ("requests", Value::U64(20)),
                ("ok", Value::U64(16)),
                ("shed", Value::U64(4)),
                ("errors", Value::U64(0)),
                ("cache_hits", Value::U64(4)),
                ("batch_max", Value::U64(8)),
                ("p50_latency_ns", Value::U64(1_000)),
                ("p95_latency_ns", Value::U64(5_000)),
                ("p99_latency_ns", Value::U64(9_000)),
                ("throughput_rps", Value::F64(1.25e5)),
            ],
        );
        let r = RunReport::from_json_lines(&obs.to_json_lines()).unwrap();
        assert_eq!(r.serve.batches, 3);
        assert_eq!(r.serve.batched_samples, 16);
        assert_eq!(r.serve.max_queue_depth, 12);
        assert_eq!(r.serve.shed, 4);
        assert!((r.serve.cache_hit_rate() - 0.25).abs() < 1e-12);
        assert!((r.serve.mean_batch_fill() - 16.0 / 24.0).abs() < 1e-12);
        assert!((r.serve.shed_rate() - 0.2).abs() < 1e-12);
        assert_eq!(r.serve.p95_latency_ns, 5_000);
    }

    #[test]
    fn json_object_round_trips_through_public_parser() {
        let pairs = vec![
            ("id".to_string(), Value::U64(7)),
            ("genes".to_string(), Value::Str("TP53,KRAS".to_string())),
            ("tumor".to_string(), Value::Bool(true)),
            ("score".to_string(), Value::F64(0.5)),
        ];
        let line = json_object(&pairs);
        assert_eq!(parse_json_object(&line).unwrap(), pairs);
        assert!(parse_json_object("not json").is_err());
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
        assert_eq!(finite_or_zero(f64::INFINITY), 0.0);
        assert_eq!(finite_or_zero(1.5), 1.5);
    }

    #[test]
    fn span_guard_elapsed_is_monotone() {
        let obs = Obs::enabled();
        let s = obs.span("t");
        let a = s.elapsed_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = s.elapsed_ns();
        assert!(b >= a);
    }
}
