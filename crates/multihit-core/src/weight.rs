//! The weighted-set-cover objective `F` and combination scoring.
//!
//! The paper scores a candidate gene combination as
//!
//! ```text
//! F = (α·TP + TN) / (Nt + Nn),        α = 0.1
//! ```
//!
//! where `TP` is the number of (remaining) tumor samples carrying mutations
//! in *all* genes of the combination and `TN` the number of normal samples
//! carrying mutations in *not all* of them (Eq. 1). α offsets the greedy
//! algorithm's bias toward covering tumors at the expense of specificity.
//!
//! ## Exact, deterministic comparison
//!
//! A massively parallel argmax over ~10¹² float scores is sensitive to both
//! rounding and reduction order. We therefore score with an *integer*
//! numerator `p·TP + q·TN` for a rational `α = p/q` (denominator
//! `q·(Nt+Nn)` is constant within an iteration) and break ties by the
//! colexicographically smallest combination. Every reduction order then
//! yields bit-identical winners — an invariant the test suite and the GPU /
//! cluster substrates rely on.

use crate::bitmat::BitMatrix;

/// A rational true-positive weight `α = num/den` (paper: 1/10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Alpha {
    num: u32,
    den: u32,
}

impl Alpha {
    /// The paper's α = 0.1.
    pub const PAPER: Alpha = Alpha { num: 1, den: 10 };

    /// A custom rational α.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: u32, den: u32) -> Self {
        assert!(den != 0, "alpha denominator must be non-zero");
        Alpha { num, den }
    }

    /// α as a float, for reporting.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }

    /// Integer score numerator `num·TP + den·TN` (see module docs).
    ///
    /// A combination covering **no** remaining tumor sample scores 0: set
    /// cover only ever selects sets with fresh coverage (otherwise a
    /// high-TN, zero-TP combination could win the argmax forever and the
    /// greedy loop would never terminate). Encoding the rule here makes
    /// every scan/reduction path — CPU scanner, simulated kernels, rank
    /// reductions — inherit it consistently.
    #[inline]
    #[must_use]
    pub fn score(self, tp: u32, tn: u32) -> u64 {
        if tp == 0 {
            return 0;
        }
        u64::from(self.num) * u64::from(tp) + u64::from(self.den) * u64::from(tn)
    }
}

/// A candidate `H`-gene combination (strictly increasing gene ids).
pub type Combo<const H: usize> = [u32; H];

/// A scored combination: the integer score plus its components.
///
/// Ordering is by score, then (descending) by colex rank of the genes so the
/// *maximum* `Scored` under `Ord` is the highest score with the colex-smallest
/// combination — a total order independent of reduction shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scored<const H: usize> {
    /// Integer score numerator (`α.num·TP + α.den·TN`).
    pub score: u64,
    /// True positives: remaining tumor samples covered.
    pub tp: u32,
    /// True negatives: normal samples *not* covered.
    pub tn: u32,
    /// The gene ids, strictly increasing.
    pub genes: Combo<H>,
}

impl<const H: usize> Scored<H> {
    /// The identity element for max-reductions: loses to every real score.
    pub const NEG_INFINITY: Scored<H> = Scored {
        score: 0,
        tp: 0,
        tn: 0,
        genes: [u32::MAX; H],
    };

    /// `F` as a float given the cohort totals, for reporting (Eq. 1).
    #[must_use]
    pub fn f_value(&self, alpha: Alpha, n_tumor: u32, n_normal: u32) -> f64 {
        self.score as f64 / (f64::from(alpha.den) * f64::from(n_tumor + n_normal))
    }

    /// True iff `self` beats `other` in the deterministic total order.
    #[inline]
    #[must_use]
    pub fn beats(&self, other: &Self) -> bool {
        self.cmp_det(other) == std::cmp::Ordering::Greater
    }

    /// The deterministic comparison: score first, colex-smaller genes win ties.
    #[inline]
    #[must_use]
    pub fn cmp_det(&self, other: &Self) -> std::cmp::Ordering {
        self.score.cmp(&other.score).then_with(|| {
            // Colex: compare highest gene first; smaller wins, so reverse.
            for t in (0..H).rev() {
                match self.genes[t].cmp(&other.genes[t]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o.reverse(),
                }
            }
            std::cmp::Ordering::Equal
        })
    }

    /// Max-combine two scored candidates deterministically.
    #[inline]
    #[must_use]
    pub fn max_det(self, other: Self) -> Self {
        if other.beats(&self) {
            other
        } else {
            self
        }
    }
}

impl<const H: usize> PartialOrd for Scored<H> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const H: usize> Ord for Scored<H> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp_det(other)
    }
}

/// Score one combination against a (possibly spliced) tumor matrix and the
/// normal matrix.
///
/// `TP` = tumors carrying all `H` genes mutated; `TN` = normals not carrying
/// all of them.
#[inline]
#[must_use]
pub fn score_combo<const H: usize>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    genes: &Combo<H>,
    alpha: Alpha,
) -> Scored<H> {
    let tp = tumor.count_all(genes);
    let covered_normals = normal.count_all(genes);
    let tn = normal.n_samples() as u32 - covered_normals;
    Scored {
        score: alpha.score(tp, tn),
        tp,
        tn,
        genes: *genes,
    }
}

/// The size in bytes of the record each MPI rank returns to rank 0 in the
/// paper (four `int` gene ids + one `float` F-max = 20 bytes, §III-E).
pub const PAPER_RECORD_BYTES: usize = 20;

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (BitMatrix, BitMatrix) {
        // 4 genes; 6 tumor samples, 4 normal samples.
        let tumor = BitMatrix::from_rows(
            4,
            6,
            &[vec![0, 1, 2, 3], vec![0, 1, 2], vec![1, 2, 4], vec![5]],
        );
        let normal = BitMatrix::from_rows(4, 4, &[vec![0], vec![0, 1], vec![2], vec![]]);
        (tumor, normal)
    }

    #[test]
    fn alpha_paper_value() {
        assert_eq!(Alpha::PAPER.as_f64(), 0.1);
        assert_eq!(Alpha::PAPER.score(10, 3), 10 + 30);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn alpha_zero_den_panics() {
        let _ = Alpha::new(1, 0);
    }

    #[test]
    fn score_combo_counts() {
        let (t, n) = toy();
        // genes {0,1}: tumors with both = {0,1,2} → TP=3.
        // normals with both = {0} → TN = 4-1 = 3.
        let s = score_combo(&t, &n, &[0, 1], Alpha::PAPER);
        assert_eq!((s.tp, s.tn), (3, 3));
        assert_eq!(s.score, 3 + 30);
        let f = s.f_value(Alpha::PAPER, 6, 4);
        assert!((f - (0.1 * 3.0 + 3.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tie_break_prefers_colex_smaller() {
        let a = Scored::<2> {
            score: 10,
            tp: 1,
            tn: 1,
            genes: [0, 5],
        };
        let b = Scored::<2> {
            score: 10,
            tp: 1,
            tn: 1,
            genes: [3, 4],
        };
        // colex: [3,4] < [0,5] because 4 < 5 ⇒ b wins the tie.
        assert!(b.beats(&a));
        assert_eq!(a.max_det(b), b);
        assert_eq!(b.max_det(a), b);
    }

    #[test]
    fn higher_score_always_wins() {
        let a = Scored::<2> {
            score: 11,
            tp: 0,
            tn: 0,
            genes: [8, 9],
        };
        let b = Scored::<2> {
            score: 10,
            tp: 0,
            tn: 0,
            genes: [0, 1],
        };
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
    }

    #[test]
    fn neg_infinity_loses_to_everything() {
        let z = Scored::<3>::NEG_INFINITY;
        let a = Scored::<3> {
            score: 0,
            tp: 0,
            tn: 0,
            genes: [0, 1, 2],
        };
        // Same score, but a's genes are colex-smaller than [MAX; 3].
        assert!(a.beats(&z));
        assert_eq!(z.max_det(a), a);
    }

    #[test]
    fn max_det_is_associative_and_commutative() {
        let xs = [
            Scored::<2> {
                score: 5,
                tp: 0,
                tn: 0,
                genes: [1, 2],
            },
            Scored::<2> {
                score: 5,
                tp: 0,
                tn: 0,
                genes: [0, 2],
            },
            Scored::<2> {
                score: 7,
                tp: 0,
                tn: 0,
                genes: [2, 3],
            },
            Scored::<2>::NEG_INFINITY,
        ];
        let fold_lr = xs.iter().copied().reduce(Scored::max_det).unwrap();
        let fold_rl = xs.iter().rev().copied().reduce(Scored::max_det).unwrap();
        let pairwise = xs[0].max_det(xs[1]).max_det(xs[2].max_det(xs[3]));
        assert_eq!(fold_lr, fold_rl);
        assert_eq!(fold_lr, pairwise);
    }

    #[test]
    fn ord_matches_cmp_det() {
        let mut v = [
            Scored::<2> {
                score: 5,
                tp: 0,
                tn: 0,
                genes: [1, 2],
            },
            Scored::<2> {
                score: 9,
                tp: 0,
                tn: 0,
                genes: [0, 1],
            },
            Scored::<2> {
                score: 5,
                tp: 0,
                tn: 0,
                genes: [0, 2],
            },
        ];
        v.sort();
        assert_eq!(v.last().unwrap().score, 9);
        assert_eq!(v.iter().max().unwrap().score, 9);
        // Among equal scores the colex-smaller sorts later (it "wins").
        assert_eq!(v[0].genes, [1, 2]);
        assert_eq!(v[1].genes, [0, 2]);
    }

    #[test]
    fn record_size_matches_paper() {
        // 4 × i32 gene ids + 1 × f32 = 20 bytes.
        assert_eq!(4 * 4 + 4, PAPER_RECORD_BYTES);
    }
}
