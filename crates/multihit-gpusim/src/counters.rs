//! NVPROF-style run metrics across a fleet of simulated GPUs (§III-H: the
//! paper profiles with NVPROF; Figs 6 and 7 chart these quantities per GPU).
//!
//! *Compute utilization* follows the paper's operational definition (§IV-C):
//! a GPU that finishes early idles while the straggler runs, so utilization
//! of GPU `g` is `time_g / max_g time_g` — the straggler reads 100%.

use crate::cost::{CostModel, GpuCost, StallBreakdown};
use multihit_core::obs::Obs;

/// The full per-GPU profile row of one run.
#[derive(Clone, Copy, Debug)]
pub struct GpuRunMetrics {
    /// GPU index within the run (the x-axis of Figs 6–7).
    pub gpu_index: usize,
    /// Modeled launch cost.
    pub cost: GpuCost,
    /// Compute utilization relative to the run's straggler.
    pub utilization: f64,
    /// Achieved DRAM read+write throughput, GB/s.
    pub dram_gbps: f64,
    /// Warp-stall attribution.
    pub stalls: StallBreakdown,
}

/// Assemble per-GPU metrics from per-GPU launch costs.
#[must_use]
pub fn run_metrics(model: &CostModel, costs: &[GpuCost]) -> Vec<GpuRunMetrics> {
    let max_t = costs.iter().map(|c| c.time_s).fold(0.0f64, f64::max);
    costs
        .iter()
        .enumerate()
        .map(|(gpu_index, cost)| GpuRunMetrics {
            gpu_index,
            cost: *cost,
            utilization: if max_t > 0.0 {
                cost.time_s / max_t
            } else {
                0.0
            },
            dram_gbps: cost.dram_gbps(),
            stalls: model.stalls(cost),
        })
        .collect()
}

/// Publish a run's [`GpuRunMetrics`] onto an observability stream: one
/// `gpu_metrics` point per GPU plus aggregate `gpu.*` counters and fleet
/// gauges. This is the single funnel from the NVPROF-style profile rows to
/// the metrics JSON — consumers read the stream instead of re-deriving the
/// numbers from raw costs.
pub fn record_run_metrics(obs: &Obs, metrics: &[GpuRunMetrics]) {
    if !obs.is_enabled() || metrics.is_empty() {
        return;
    }
    let mut busy_ns_total = 0u64;
    let mut bytes_total = 0u64;
    for m in metrics {
        let time_ns = (m.cost.time_s * 1e9) as u64;
        busy_ns_total += time_ns;
        bytes_total += m.cost.bytes;
        obs.point(
            "gpu_metrics",
            &[
                ("gpu", m.gpu_index.into()),
                ("time_ns", time_ns.into()),
                ("utilization", m.utilization.into()),
                ("dram_gbps", m.dram_gbps.into()),
                ("bytes", m.cost.bytes.into()),
                ("occupancy", m.cost.occupancy.into()),
                ("stall_mem_dep", m.stalls.memory_dependency.into()),
                ("stall_mem_throttle", m.stalls.memory_throttle.into()),
                ("stall_exec_dep", m.stalls.execution_dependency.into()),
                ("stall_other", m.stalls.other.into()),
            ],
        );
    }
    obs.counter_add("gpu.launches", metrics.len() as u64);
    obs.counter_add("gpu.busy_ns", busy_ns_total);
    obs.counter_add("gpu.bytes", bytes_total);
    let (mean, min, max) = utilization_summary(metrics);
    obs.gauge_set("gpu.utilization_mean", mean);
    obs.gauge_set("gpu.utilization_min", min);
    obs.gauge_set("gpu.utilization_max", max);
}

/// Multiplicative per-GPU performance jitter (node-to-node variability: OS
/// noise, clock/thermal throttling). Deterministic in the seed; amplitude
/// `a` yields factors in `[1−a, 1+a]`. This is what puts the paper's Fig 6
/// spikes (GPU #372, #504, #560) into an otherwise smooth model.
#[must_use]
pub fn jitter_factors(n: usize, amplitude: f64, seed: u64) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&amplitude),
        "amplitude must be in [0,1)"
    );
    let mut state = seed ^ 0x5DEECE66D;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            1.0 + amplitude * (2.0 * u - 1.0)
        })
        .collect()
}

/// Apply jitter to launch times (scales `time_s` only).
#[must_use]
pub fn apply_jitter(costs: &[GpuCost], amplitude: f64, seed: u64) -> Vec<GpuCost> {
    let f = jitter_factors(costs.len(), amplitude, seed);
    costs
        .iter()
        .zip(f)
        .map(|(c, factor)| GpuCost {
            time_s: c.time_s * factor,
            ..*c
        })
        .collect()
}

/// Summary statistics of a utilization series (mean, min, max).
#[must_use]
pub fn utilization_summary(metrics: &[GpuRunMetrics]) -> (f64, f64, f64) {
    if metrics.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut sum = 0.0;
    for m in metrics {
        min = min.min(m.utilization);
        max = max.max(m.utilization);
        sum += m.utilization;
    }
    (sum / metrics.len() as f64, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;
    use crate::profile::profile_range4;
    use multihit_core::schemes::Scheme4;

    fn costs_for(scheme: Scheme4, g: u32, gpus: usize) -> (CostModel, Vec<GpuCost>) {
        let model = CostModel::new(GpuSpec::v100_summit());
        let n = scheme.thread_count(g);
        let per = n / gpus as u64;
        let costs: Vec<GpuCost> = (0..gpus)
            .map(|i| {
                let lo = i as u64 * per;
                let hi = if i == gpus - 1 { n } else { lo + per };
                model.evaluate(&profile_range4(scheme, g, 8, lo, hi))
            })
            .collect();
        (model, costs)
    }

    #[test]
    fn straggler_reads_full_utilization() {
        let (model, costs) = costs_for(Scheme4::TwoXTwo, 3000, 30);
        let m = run_metrics(&model, &costs);
        let max_u = m.iter().map(|x| x.utilization).fold(0.0f64, f64::max);
        assert!((max_u - 1.0).abs() < 1e-12);
        assert!(m
            .iter()
            .all(|x| x.utilization > 0.0 && x.utilization <= 1.0));
    }

    #[test]
    fn equidistance_2x2_utilization_decreases_with_index() {
        // Under equal-thread (ED) partitions the head GPUs hold the heavy
        // threads and straggle: utilization decays steeply with index (the
        // load imbalance §III-C motivates EA with). The EA-mode inverse
        // utilization/throughput correlation of Fig 6 is asserted in the
        // cluster crate, where the real scheduler builds the partitions.
        let (model, costs) = costs_for(Scheme4::TwoXTwo, 3000, 30);
        let m = run_metrics(&model, &costs);
        assert!((m[0].utilization - 1.0).abs() < 1e-12, "GPU 0 straggles");
        assert!(m.last().unwrap().utilization < 0.2);
        // Tail partitions are overhead-dominated: tiny traffic, low GB/s.
        assert!(m[0].dram_gbps > m.last().unwrap().dram_gbps);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let a = jitter_factors(1000, 0.03, 7);
        let b = jitter_factors(1000, 0.03, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&f| (0.97..=1.03).contains(&f)));
        let mean = a.iter().sum::<f64>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.005);
    }

    #[test]
    fn apply_jitter_scales_only_time() {
        let (model, costs) = costs_for(Scheme4::ThreeXOne, 500, 6);
        let j = apply_jitter(&costs, 0.05, 3);
        for (a, b) in costs.iter().zip(&j) {
            assert_eq!(a.bytes, b.bytes);
            assert!((b.time_s / a.time_s - 1.0).abs() <= 0.05 + 1e-12);
        }
        let _ = run_metrics(&model, &j);
    }

    #[test]
    fn summary_bounds() {
        let (model, costs) = costs_for(Scheme4::ThreeXOne, 800, 12);
        let m = run_metrics(&model, &costs);
        let (mean, min, max) = utilization_summary(&m);
        assert!(min <= mean && mean <= max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn bad_amplitude_panics() {
        let _ = jitter_factors(5, 1.5, 0);
    }
}
