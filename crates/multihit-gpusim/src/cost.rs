//! The GPU cycle/memory cost model.
//!
//! Maps a [`crate::profile::WorkProfile`] to execution time and
//! NVPROF-style metrics. The model is deliberately simple and *structural* —
//! every input comes from the kernel's own arithmetic (ops, bytes, thread
//! counts, inner-loop lengths), and the few device constants live in
//! [`crate::device::GpuSpec`], fixed once for all experiments:
//!
//! * **compute time** = ops / aggregate integer throughput;
//! * **memory time** = bytes / achieved bandwidth, where achieved bandwidth
//!   degrades with (a) low *occupancy* — too few resident threads to hide
//!   HBM latency (the head of an equi-area 2x2 partition has a handful of
//!   monster threads) — and (b) short inner loops — dependent, uncoalesced
//!   row fetches that cannot stream (the tail of any partition);
//! * **setup time** = per-thread index math (λ→(i,j,k), §III-F) divided by
//!   the device's concurrency;
//! * total = max(compute, memory) + setup + launch overhead.
//!
//! These two degradation terms are exactly the paper's §IV-C diagnosis:
//! "compute utilization primarily depends on memory read/write throughput",
//! with the processor transitioning between memory- and compute-bound
//! regimes across GPU index.

use crate::device::GpuSpec;
use crate::profile::WorkProfile;

/// Streaming-efficiency knee: inner loops of length `T` reach
/// `T/(T + STREAM_KNEE)` of streaming bandwidth.
pub const STREAM_KNEE: f64 = 4.0;

/// Modeled execution of one kernel launch on one GPU.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GpuCost {
    /// Wall time, seconds.
    pub time_s: f64,
    /// Cycles doing useful integer work.
    pub compute_cycles: f64,
    /// Cycles the memory system needs for the kernel's traffic.
    pub memory_cycles: f64,
    /// Cycles of per-thread setup (index math, prefetch issue).
    pub setup_cycles: f64,
    /// Global bytes moved.
    pub bytes: u64,
    /// Occupancy: resident threads / device target, capped at 1.
    pub occupancy: f64,
    /// Achieved fraction of peak DRAM bandwidth.
    pub bw_fraction: f64,
}

impl GpuCost {
    /// Achieved DRAM read/write throughput, GB/s (Fig 6b's y-axis).
    #[must_use]
    pub fn dram_gbps(&self) -> f64 {
        if self.time_s <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.time_s / 1e9
        }
    }

    /// Instruction-issue efficiency: fraction of cycles retiring useful ops.
    #[must_use]
    pub fn issue_efficiency(&self) -> f64 {
        let total = self.total_cycles();
        if total <= 0.0 {
            0.0
        } else {
            (self.compute_cycles / total).min(1.0)
        }
    }

    /// All cycles the launch occupies.
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.compute_cycles.max(self.memory_cycles) + self.setup_cycles
    }

    /// Is the launch memory-bound (memory pipe is the critical path)?
    #[must_use]
    pub fn memory_bound(&self) -> bool {
        self.memory_cycles > self.compute_cycles
    }
}

/// Breakdown of stalled warp cycles by cause (Fig 6c).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StallBreakdown {
    /// Stalls waiting on outstanding loads (memory dependency).
    pub memory_dependency: f64,
    /// Stalls because the memory pipeline is saturated (memory throttle).
    pub memory_throttle: f64,
    /// Stalls waiting on prior arithmetic (execution dependency).
    pub execution_dependency: f64,
    /// Everything else (sync, not-selected, …).
    pub other: f64,
}

impl StallBreakdown {
    /// Fractions sum to 1 for a non-empty launch.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.memory_dependency + self.memory_throttle + self.execution_dependency + self.other
    }
}

/// The cost model over a fixed device spec.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Device constants.
    pub spec: GpuSpec,
}

impl CostModel {
    /// Model over the given device.
    #[must_use]
    pub fn new(spec: GpuSpec) -> Self {
        CostModel { spec }
    }

    /// Latency-hiding factor from occupancy: `occ / (occ + knee)`, scaled so
    /// that full occupancy reaches 1.
    #[must_use]
    pub fn latency_hiding(&self, occupancy: f64) -> f64 {
        let k = self.spec.occupancy_knee;
        (occupancy / (occupancy + k)) * (1.0 + k)
    }

    /// Streaming factor from mean inner-loop length.
    #[must_use]
    pub fn stream_factor(&self, mean_inner: f64) -> f64 {
        if mean_inner <= 0.0 {
            1.0 / (1.0 + STREAM_KNEE)
        } else {
            mean_inner / (mean_inner + STREAM_KNEE)
        }
    }

    /// Evaluate one launch.
    #[must_use]
    pub fn evaluate(&self, p: &WorkProfile) -> GpuCost {
        if p.n_threads == 0 {
            return GpuCost {
                time_s: self.spec.launch_overhead_s,
                ..GpuCost::default()
            };
        }
        let occupancy = (p.n_threads as f64 / self.spec.occupancy_target() as f64).min(1.0);
        let bw_fraction = self.spec.bw_efficiency_peak
            * self.latency_hiding(occupancy)
            * self.stream_factor(p.mean_inner_len());
        let bytes = p.total_bytes();
        let memory_cycles = bytes as f64 / (self.spec.bytes_per_cycle() * bw_fraction);
        let compute_cycles = p.ops as f64 / self.spec.int_ops_per_cycle;
        let concurrency = (p.n_threads as f64).min(self.spec.occupancy_target() as f64);
        let setup_cycles =
            p.n_threads as f64 * self.spec.thread_setup_cycles / concurrency.max(1.0);
        let total = compute_cycles.max(memory_cycles) + setup_cycles;
        GpuCost {
            time_s: total / self.spec.clock_hz + self.spec.launch_overhead_s,
            compute_cycles,
            memory_cycles,
            setup_cycles,
            bytes,
            occupancy,
            bw_fraction,
        }
    }

    /// Classify the stalled cycles of a launch (Fig 6c). The stall share is
    /// `1 − issue_efficiency`; it is attributed to memory dependency in
    /// proportion to un-hidden latency, to memory throttle in proportion to
    /// bandwidth saturation, and to execution dependency as the remainder's
    /// arithmetic-dependency share.
    #[must_use]
    pub fn stalls(&self, cost: &GpuCost) -> StallBreakdown {
        let stall = 1.0 - cost.issue_efficiency();
        if stall <= 0.0 {
            return StallBreakdown::default();
        }
        let latency_miss = 1.0 - self.latency_hiding(cost.occupancy).min(1.0);
        let throttle = cost.bw_fraction / self.spec.bw_efficiency_peak;
        // Raw weights → normalized to the stall share.
        let w_dep = 1.0 + 3.0 * latency_miss;
        let w_thr = 2.0 * throttle;
        let w_exe = 0.6;
        let w_oth = 0.25;
        let sum = w_dep + w_thr + w_exe + w_oth;
        StallBreakdown {
            memory_dependency: stall * w_dep / sum,
            memory_throttle: stall * w_thr / sum,
            execution_dependency: stall * w_exe / sum,
            other: stall * w_oth / sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_range4;
    use multihit_core::schemes::Scheme4;

    fn model() -> CostModel {
        CostModel::new(GpuSpec::v100_summit())
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let m = model();
        let c = m.evaluate(&WorkProfile::default());
        assert_eq!(c.time_s, m.spec.launch_overhead_s);
        assert_eq!(c.bytes, 0);
    }

    #[test]
    fn more_work_takes_longer() {
        let m = model();
        let g = 400;
        let n = Scheme4::ThreeXOne.thread_count(g);
        let small = m.evaluate(&profile_range4(Scheme4::ThreeXOne, g, 4, 0, n / 4));
        let large = m.evaluate(&profile_range4(Scheme4::ThreeXOne, g, 4, 0, n));
        assert!(large.time_s > small.time_s);
    }

    #[test]
    fn kernel_is_memory_bound_at_realistic_shapes() {
        // The paper's §IV-C: this workload is dominated by memory behavior.
        let m = model();
        let g = 2000;
        let n = Scheme4::ThreeXOne.thread_count(g);
        let c = m.evaluate(&profile_range4(Scheme4::ThreeXOne, g, 20, 0, n));
        assert!(c.memory_bound());
        assert!(c.issue_efficiency() < 0.5);
    }

    #[test]
    fn low_occupancy_head_partition_is_slower_per_byte() {
        // 2x2 head partitions have few, heavy threads: latency-bound.
        let m = model();
        let g = 8354; // ACC
        let scheme = Scheme4::TwoXTwo;
        // Head: the first ~9.6k threads (few); tail: the last million.
        let n = scheme.thread_count(g);
        let head = m.evaluate(&profile_range4(scheme, g, 8, 0, 9_600));
        let tail = m.evaluate(&profile_range4(scheme, g, 8, n - 1_000_000, n));
        assert!(head.occupancy < 0.1);
        assert!((tail.occupancy - 1.0).abs() < 1e-12);
        let head_spb = head.time_s / head.bytes as f64;
        let tail_spb = tail.time_s / tail.bytes as f64;
        assert!(
            head_spb > 1.5 * tail_spb,
            "head {head_spb:e} vs tail {tail_spb:e}"
        );
        // And its achieved DRAM throughput is lower (Fig 6 inverse
        // correlation: the straggler shows low read/write throughput).
        assert!(head.dram_gbps() < tail.dram_gbps());
    }

    #[test]
    fn latency_hiding_saturates() {
        let m = model();
        assert!((m.latency_hiding(1.0) - 1.0).abs() < 1e-12);
        assert!(m.latency_hiding(0.05) < 0.75);
        assert!(m.latency_hiding(0.5) > m.latency_hiding(0.1));
    }

    #[test]
    fn stream_factor_penalizes_short_loops() {
        let m = model();
        assert!(m.stream_factor(1.0) < 0.3);
        assert!(m.stream_factor(100.0) > 0.95);
        assert!(m.stream_factor(0.0) > 0.0);
    }

    #[test]
    fn stall_breakdown_normalizes() {
        let m = model();
        let g = 3000;
        let n = Scheme4::ThreeXOne.thread_count(g);
        let c = m.evaluate(&profile_range4(Scheme4::ThreeXOne, g, 16, 0, n / 2));
        let s = m.stalls(&c);
        let expected = 1.0 - c.issue_efficiency();
        assert!((s.total() - expected).abs() < 1e-9);
        assert!(s.memory_dependency > s.execution_dependency);
    }

    #[test]
    fn dram_throughput_below_peak() {
        let m = model();
        let g = 5000;
        let n = Scheme4::ThreeXOne.thread_count(g);
        let c = m.evaluate(&profile_range4(Scheme4::ThreeXOne, g, 16, 0, n));
        assert!(c.dram_gbps() < 900.0);
        assert!(c.dram_gbps() > 50.0);
    }
}
