//! Aggregate work profiles of kernel launches, computed in `O(G)`.
//!
//! A *work profile* summarizes what a contiguous λ-range of threads will do:
//! thread count, combination count, global-memory word traffic, and
//! arithmetic ops — derived from the kernel structure (with the MemOpt
//! prefetching of §III-D applied), never by enumeration. This is what makes
//! paper-scale modeling (`G = 19411`, 10¹² threads) instantaneous: the work
//! collapses onto the `O(G)` discrete levels of [`multihit_core::sweep`].
//!
//! Kernel structure assumed (per thread, both matrices, `w = wt + wn` words
//! per gene-row pair):
//!
//! * `3x1` (Algorithm 3): prefetch rows `i,j,k` (3w) and fold their AND
//!   (2w ops); for each of `T = G−1−k` inner values of `l`: read row `l`
//!   (w), AND + popcount (2w ops).
//! * `2x2` (Algorithm 2): prefetch `i,j` (2w), fold (w ops); per `k`: read
//!   row `k` (w), fold (w); per `(k,l)`: read `l` (w), AND+popcount (2w).
//! * `1x3` / `4x1`: analogous with one less / one more prefetched level.

use multihit_core::combin::{binomial, tet, tri};
use multihit_core::schemes::{Scheme3, Scheme4};

/// One discrete workload level of a kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelLevel {
    /// First λ of the level.
    pub lambda_start: u64,
    /// Threads in the level.
    pub n_threads: u64,
    /// Inner-loop trip count `T` of each thread in the level.
    pub inner_len: u64,
    /// Combinations evaluated per thread.
    pub combos_per_thread: u64,
}

/// Aggregate profile of a λ-range.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkProfile {
    /// Threads launched.
    pub n_threads: u64,
    /// Combinations evaluated.
    pub combos: u64,
    /// Global words read inside inner loops.
    pub inner_words: u64,
    /// Global words read by per-thread prefetches.
    pub prefetch_words: u64,
    /// Integer ops (ANDs + popcounts), word granularity.
    pub ops: u64,
    /// Σ over threads of `1/(T+1)` — used to characterize how short-looped
    /// the range is (high ⇒ many tiny threads).
    pub inv_inner_sum: f64,
}

impl WorkProfile {
    /// Total global words (inner + prefetch).
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.inner_words + self.prefetch_words
    }

    /// Total global bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_words() * 8
    }

    /// Mean inner-loop length over threads (0 for an empty profile).
    #[must_use]
    pub fn mean_inner_len(&self) -> f64 {
        if self.n_threads == 0 {
            0.0
        } else {
            // Harmonic characterization: T̄ = n/Σ 1/(T+1) − 1 emphasizes the
            // short threads that dominate latency behavior.
            self.n_threads as f64 / self.inv_inner_sum - 1.0
        }
    }

    /// Merge two profiles (disjoint ranges).
    #[must_use]
    pub fn merge(self, other: WorkProfile) -> WorkProfile {
        WorkProfile {
            n_threads: self.n_threads + other.n_threads,
            combos: self.combos + other.combos,
            inner_words: self.inner_words + other.inner_words,
            prefetch_words: self.prefetch_words + other.prefetch_words,
            ops: self.ops + other.ops,
            inv_inner_sum: self.inv_inner_sum + other.inv_inner_sum,
        }
    }
}

/// The kernel levels of a 4-hit scheme (ascending λ).
#[must_use]
pub fn kernel_levels4(scheme: Scheme4, g: u32) -> Vec<KernelLevel> {
    let gu = u64::from(g);
    match scheme {
        Scheme4::OneXThree => (0..gu)
            .map(|i| KernelLevel {
                lambda_start: i,
                n_threads: 1,
                inner_len: gu - 1 - i,
                combos_per_thread: binomial(gu - 1 - i, 3),
            })
            .collect(),
        Scheme4::TwoXTwo => (1..gu)
            .map(|j| KernelLevel {
                lambda_start: tri(j),
                n_threads: j,
                inner_len: gu - 1 - j,
                combos_per_thread: tri(gu - 1 - j),
            })
            .collect(),
        Scheme4::ThreeXOne => (2..gu)
            .map(|k| KernelLevel {
                lambda_start: tet(k),
                n_threads: tri(k),
                inner_len: gu - 1 - k,
                combos_per_thread: gu - 1 - k,
            })
            .collect(),
        Scheme4::FourXOne => vec![KernelLevel {
            lambda_start: 0,
            n_threads: binomial(gu, 4),
            inner_len: 1,
            combos_per_thread: 1,
        }],
    }
}

/// The kernel levels of a 3-hit scheme (ascending λ).
#[must_use]
pub fn kernel_levels3(scheme: Scheme3, g: u32) -> Vec<KernelLevel> {
    let gu = u64::from(g);
    match scheme {
        Scheme3::OneXTwo => (0..gu)
            .map(|i| KernelLevel {
                lambda_start: i,
                n_threads: 1,
                inner_len: gu - 1 - i,
                combos_per_thread: tri(gu - 1 - i),
            })
            .collect(),
        Scheme3::TwoXOne => (1..gu)
            .map(|j| KernelLevel {
                lambda_start: tri(j),
                n_threads: j,
                inner_len: gu - 1 - j,
                combos_per_thread: gu - 1 - j,
            })
            .collect(),
        Scheme3::ThreeXZero => vec![KernelLevel {
            lambda_start: 0,
            n_threads: tet(gu),
            inner_len: 1,
            combos_per_thread: 1,
        }],
    }
}

/// Prefetched rows per thread for a scheme (the fixed tuple coordinates).
#[must_use]
pub fn prefetch_depth4(scheme: Scheme4) -> u64 {
    match scheme {
        Scheme4::OneXThree => 1,
        Scheme4::TwoXTwo => 2,
        Scheme4::ThreeXOne => 3,
        Scheme4::FourXOne => 0,
    }
}

/// Accumulate the profile of the λ-range `[lo, hi)` over precomputed levels.
///
/// `w` is the combined words per gene-row pair (tumor + normal). `prefetch`
/// is the number of rows prefetched per thread. For schemes with a 2-deep
/// inner loop (`2x2`, `1x3`) the per-`k` row reads are accounted as
/// `inner_len` extra words per thread (`2x2`) per the kernel structure.
#[must_use]
pub fn profile_levels(
    levels: &[KernelLevel],
    lo: u64,
    hi: u64,
    w: u64,
    prefetch: u64,
    mid_loop_reads: bool,
) -> WorkProfile {
    let mut p = WorkProfile::default();
    for lv in levels {
        let s = lv.lambda_start.max(lo);
        let e = (lv.lambda_start + lv.n_threads).min(hi);
        if s < e {
            accumulate(&mut p, e - s, lv, w, prefetch, mid_loop_reads);
        }
    }
    p
}

/// Add `n` threads of level `lv` into a profile.
#[inline]
fn accumulate(
    p: &mut WorkProfile,
    n: u64,
    lv: &KernelLevel,
    w: u64,
    prefetch: u64,
    mid_loop_reads: bool,
) {
    let t = lv.inner_len;
    let c = lv.combos_per_thread;
    p.n_threads += n;
    p.combos += n * c;
    // Inner reads: one row per combination, plus (for 2-deep inner loops)
    // one row per middle-loop iteration.
    let mut inner = n * c * w;
    let mut ops = n * c * 2 * w + n * prefetch.saturating_sub(1) * w;
    if mid_loop_reads {
        inner += n * t * w;
        ops += n * t * w;
    }
    p.inner_words += inner;
    p.prefetch_words += n * prefetch * w;
    p.ops += ops;
    p.inv_inner_sum += n as f64 / (t as f64 + 1.0);
}

/// Inner-loop trip count of thread λ under a 4-hit scheme (the `T` of the
/// kernel levels; distinct from `Scheme4::workload`, which counts
/// *combinations*). Thread-index decode follows the GPU float path
/// (`unrank_*_fast`): the paper's float formulas inside their verified
/// accuracy domain, the exact integer maps beyond it.
#[must_use]
pub fn inner_len4(scheme: Scheme4, lambda: u64, g: u32) -> u64 {
    let gu = u64::from(g);
    match scheme {
        Scheme4::OneXThree => gu - 1 - lambda,
        Scheme4::TwoXTwo => {
            let (_i, j) = multihit_core::combin::unrank_pair_fast(lambda);
            gu - 1 - u64::from(j)
        }
        Scheme4::ThreeXOne => {
            let (_i, _j, k) = multihit_core::combin::unrank_triple_fast(lambda);
            gu - 1 - u64::from(k)
        }
        Scheme4::FourXOne => 1,
    }
}

/// Profile many contiguous, sorted, disjoint λ-ranges in a single pass over
/// the levels: `O(G + P)` total instead of `O(G·P)`. Ranges must be
/// ascending by `lo`; gaps are allowed.
#[must_use]
pub fn profile_partitions(
    levels: &[KernelLevel],
    bounds: &[(u64, u64)],
    w: u64,
    prefetch: u64,
    mid_loop_reads: bool,
) -> Vec<WorkProfile> {
    debug_assert!(
        bounds.windows(2).all(|b| b[0].1 <= b[1].0),
        "ranges must be sorted/disjoint"
    );
    let mut out = vec![WorkProfile::default(); bounds.len()];
    let mut p = 0usize;
    for lv in levels {
        let lv_end = lv.lambda_start + lv.n_threads;
        // Skip partitions that end before this level starts.
        while p < bounds.len() && bounds[p].1 <= lv.lambda_start {
            p += 1;
        }
        let mut q = p;
        while q < bounds.len() && bounds[q].0 < lv_end {
            let (lo, hi) = bounds[q];
            let s = lv.lambda_start.max(lo);
            let e = lv_end.min(hi);
            if s < e {
                accumulate(&mut out[q], e - s, lv, w, prefetch, mid_loop_reads);
            }
            q += 1;
        }
        // The last overlapping partition may continue into the next level.
        p = q.saturating_sub(1).max(p);
    }
    out
}

/// Inner-loop trip count of thread λ under a 3-hit scheme.
#[must_use]
pub fn inner_len3(scheme: Scheme3, lambda: u64, g: u32) -> u64 {
    let gu = u64::from(g);
    match scheme {
        Scheme3::OneXTwo => gu - 1 - lambda,
        Scheme3::TwoXOne => {
            let (_i, j) = multihit_core::combin::unrank_pair_fast(lambda);
            gu - 1 - u64::from(j)
        }
        Scheme3::ThreeXZero => 1,
    }
}

/// Convenience: profile a λ-range of a 4-hit scheme directly.
#[must_use]
pub fn profile_range4(scheme: Scheme4, g: u32, w: u64, lo: u64, hi: u64) -> WorkProfile {
    let levels = kernel_levels4(scheme, g);
    profile_levels(
        &levels,
        lo,
        hi,
        w,
        prefetch_depth4(scheme),
        matches!(scheme, Scheme4::TwoXTwo | Scheme4::OneXThree),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_levels_agree_with_sweep_levels() {
        let g = 29;
        for scheme in Scheme4::ALL {
            let mine = kernel_levels4(scheme, g);
            let sweeps = multihit_core::sweep::levels_scheme4(scheme, g);
            assert_eq!(mine.len(), sweeps.len(), "{}", scheme.name());
            for (a, b) in mine.iter().zip(&sweeps) {
                assert_eq!(a.lambda_start, b.lambda_start);
                assert_eq!(a.n_threads, b.n_threads);
                assert_eq!(a.combos_per_thread, b.work_per_thread);
            }
        }
        for scheme in Scheme3::ALL {
            let mine = kernel_levels3(scheme, g);
            let sweeps = multihit_core::sweep::levels_scheme3(scheme, g);
            for (a, b) in mine.iter().zip(&sweeps) {
                assert_eq!(a.combos_per_thread, b.work_per_thread, "{}", scheme.name());
            }
        }
    }

    #[test]
    fn full_range_profile_counts_every_combination() {
        let g = 25;
        for scheme in [Scheme4::TwoXTwo, Scheme4::ThreeXOne] {
            let p = profile_range4(scheme, g, 4, 0, scheme.thread_count(g));
            assert_eq!(p.combos, binomial(u64::from(g), 4), "{}", scheme.name());
            assert_eq!(p.n_threads, scheme.thread_count(g));
        }
    }

    #[test]
    fn profile_is_additive_over_subranges() {
        let g = 40;
        let scheme = Scheme4::ThreeXOne;
        let n = scheme.thread_count(g);
        let whole = profile_range4(scheme, g, 3, 0, n);
        let a = profile_range4(scheme, g, 3, 0, n / 3);
        let b = profile_range4(scheme, g, 3, n / 3, n);
        let merged = a.merge(b);
        assert_eq!(merged.combos, whole.combos);
        assert_eq!(merged.inner_words, whole.inner_words);
        assert_eq!(merged.prefetch_words, whole.prefetch_words);
        assert_eq!(merged.ops, whole.ops);
        assert!((merged.inv_inner_sum - whole.inv_inner_sum).abs() < 1e-9);
    }

    #[test]
    fn three_x_one_traffic_matches_closed_form() {
        // 3x1 full scan: inner words = C(G,4)·w ; prefetch = 3·C(G,3)·w.
        let g = 30u32;
        let w = 5u64;
        let p = profile_range4(Scheme4::ThreeXOne, g, w, 0, tet(30));
        assert_eq!(p.inner_words, binomial(30, 4) * w);
        assert_eq!(p.prefetch_words, 3 * tet(30) * w);
    }

    #[test]
    fn two_x_two_counts_mid_loop_reads() {
        // 2x2 inner words = (C(G,4) + Σ_j j·(G−1−j))·w
        //                 = (C(G,4) + Σ threads·T)·w.
        let g = 20u32;
        let w = 2u64;
        let p = profile_range4(Scheme4::TwoXTwo, g, w, 0, tri(20));
        let mid: u64 = (1..20u64).map(|j| j * (19 - j)).sum();
        assert_eq!(p.inner_words, (binomial(20, 4) + mid) * w);
        assert_eq!(p.prefetch_words, 2 * tri(20) * w);
    }

    #[test]
    fn late_ranges_are_short_looped() {
        // The tail of the 3x1 λ-range has smaller mean inner length than the
        // head — the memory-irregularity gradient behind Fig 6.
        let g = 200;
        let scheme = Scheme4::ThreeXOne;
        let n = scheme.thread_count(g);
        let head = profile_range4(scheme, g, 1, 0, n / 10);
        let tail = profile_range4(scheme, g, 1, 9 * n / 10, n);
        assert!(head.mean_inner_len() > tail.mean_inner_len());
    }

    #[test]
    fn profile_partitions_matches_per_range_profiles() {
        let g = 60;
        let scheme = Scheme4::ThreeXOne;
        let n = scheme.thread_count(g);
        let levels = kernel_levels4(scheme, g);
        // Contiguous partitions, plus a variant with gaps.
        let cuts = [0, n / 7, n / 3, n / 2, n - 5, n];
        let bounds: Vec<(u64, u64)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
        let batch = profile_partitions(&levels, &bounds, 5, 3, false);
        for (b, &(lo, hi)) in batch.iter().zip(&bounds) {
            let single = profile_range4(scheme, g, 5, lo, hi);
            assert_eq!(b, &single, "[{lo},{hi})");
        }
        let gappy = vec![(10u64, 20u64), (50, 50), (100, n / 2)];
        let batch = profile_partitions(&levels, &gappy, 2, 3, false);
        for (b, &(lo, hi)) in batch.iter().zip(&gappy) {
            assert_eq!(b, &profile_range4(scheme, g, 2, lo, hi), "[{lo},{hi})");
        }
    }

    #[test]
    fn empty_range_is_zero() {
        let p = profile_range4(Scheme4::ThreeXOne, 30, 4, 10, 10);
        assert_eq!(p, WorkProfile::default());
        assert_eq!(p.mean_inner_len(), 0.0);
    }

    #[test]
    fn paper_scale_profile_is_fast_and_finite() {
        // G = 19411 (BRCA), full 3x1 range: must compute in O(G) with no
        // overflow. (~1.2e12 threads, ~5.9e15 combos.)
        let g = 19411u32;
        let scheme = Scheme4::ThreeXOne;
        let n = scheme.thread_count(g);
        let w = u64::from(911u32.div_ceil(64)) + u64::from(329u32.div_ceil(64));
        let p = profile_range4(scheme, g, w, 0, n);
        assert_eq!(p.combos, binomial(19411, 4));
        assert!(p.total_bytes() > 0);
        assert!(p.mean_inner_len() > 0.0);
    }
}
