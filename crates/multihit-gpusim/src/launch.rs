//! Kernel launch geometry: threads → blocks → waves.
//!
//! The paper launches the `maxF` kernel with 512-thread blocks (§III-E);
//! a V100 schedules blocks onto 80 SMs, up to four 512-thread blocks
//! resident per SM (2048 threads), so a launch executes in *waves* of
//! `80 × 4` blocks. This module does that arithmetic — exec uses it for
//! block bookkeeping, the cost model for occupancy, and the tests pin the
//! paper's numbers (e.g. `C(G,3)` threads per iteration ⇒ billions of
//! blocks across the fleet).

use crate::device::GpuSpec;

/// The geometry of one kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Threads requested.
    pub threads: u64,
    /// Threads per block.
    pub block_size: u32,
    /// Blocks in the grid (`ceil(threads / block_size)`).
    pub grid_blocks: u64,
    /// Blocks resident on the device at once.
    pub resident_blocks: u32,
    /// Full waves of resident blocks (`ceil(grid / resident)`).
    pub waves: u64,
}

impl LaunchConfig {
    /// Plan a launch of `threads` threads on `spec` with its default block
    /// size.
    ///
    /// # Panics
    /// Panics if the device block size is zero.
    #[must_use]
    pub fn plan(spec: &GpuSpec, threads: u64) -> Self {
        Self::plan_with_block(spec, threads, spec.block_size)
    }

    /// Plan with an explicit block size.
    #[must_use]
    pub fn plan_with_block(spec: &GpuSpec, threads: u64, block_size: u32) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let grid_blocks = threads.div_ceil(u64::from(block_size));
        let blocks_per_sm = (spec.max_threads_per_sm / block_size).max(1);
        let resident_blocks = spec.sm_count * blocks_per_sm;
        let waves = grid_blocks.div_ceil(u64::from(resident_blocks));
        LaunchConfig {
            threads,
            block_size,
            grid_blocks,
            resident_blocks,
            waves,
        }
    }

    /// Device occupancy of the launch's steady state (1.0 when at least one
    /// full wave exists).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let resident_threads = u64::from(self.resident_blocks) * u64::from(self.block_size);
        (self.threads as f64 / resident_threads as f64).min(1.0)
    }

    /// Warps per block.
    #[must_use]
    pub fn warps_per_block(&self, spec: &GpuSpec) -> u32 {
        self.block_size.div_ceil(spec.warp_size)
    }

    /// The per-block records the `maxF` kernel writes (one per block,
    /// §III-E) — i.e. `grid_blocks`.
    #[must_use]
    pub fn block_records(&self) -> u64 {
        self.grid_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihit_core::combin::binomial;

    #[test]
    fn v100_geometry() {
        let spec = GpuSpec::v100_summit();
        let lc = LaunchConfig::plan(&spec, 1_000_000);
        assert_eq!(lc.block_size, 512);
        assert_eq!(lc.grid_blocks, 1954);
        assert_eq!(lc.resident_blocks, 80 * 4);
        assert_eq!(lc.waves, 7); // ceil(1954 / 320)
        assert_eq!(lc.warps_per_block(&spec), 16);
        assert!((lc.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_launch_underoccupies() {
        let spec = GpuSpec::v100_summit();
        let lc = LaunchConfig::plan(&spec, 10_000);
        assert_eq!(lc.waves, 1);
        assert!(lc.occupancy() < 0.1);
    }

    #[test]
    fn paper_scale_block_records() {
        // BRCA 3x1: C(19411, 3) threads ⇒ the per-block list of §III-E.
        let spec = GpuSpec::v100_summit();
        let threads = binomial(19411, 3);
        let lc = LaunchConfig::plan(&spec, threads);
        assert_eq!(lc.block_records(), threads.div_ceil(512));
        // ~2.38e9 block records fleet-wide → 47.6 GB at 20 B each.
        let bytes = lc.block_records() * 20;
        assert!(
            (bytes as f64 / 47.6e9 - 1.0).abs() < 0.02,
            "bytes = {bytes}"
        );
    }

    #[test]
    fn exotic_block_sizes() {
        let spec = GpuSpec::v100_summit();
        let lc = LaunchConfig::plan_with_block(&spec, 1000, 33);
        assert_eq!(lc.grid_blocks, 31);
        assert_eq!(lc.warps_per_block(&spec), 2);
        // Residency floors at one block per SM even for giant blocks.
        let big = LaunchConfig::plan_with_block(&spec, 1 << 20, 4096);
        assert_eq!(big.resident_blocks, 80);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let spec = GpuSpec::v100_summit();
        let _ = LaunchConfig::plan_with_block(&spec, 10, 0);
    }
}
