//! # multihit-gpusim
//!
//! A V100-like GPU substrate for the multihit reproduction: the paper ran on
//! real Summit GPUs; this crate substitutes (a) a **functional executor**
//! ([`exec`]) that runs the `maxF`/`parallelReduceMax` kernel pair literally
//! over a simulated thread grid — same λ-maps, same prefetching, same
//! block/tree reduction, bit-identical winners — and (b) a **structural cost
//! model** ([`cost`]) that converts the kernel's own traffic/op counts
//! ([`profile`]) into time and NVPROF-style counters ([`counters`]).
//!
//! The model's device constants are fixed once in
//! [`device::GpuSpec::v100_summit`]; no experiment retunes them (DESIGN.md,
//! calibration note). Paper-scale launches (10¹² threads) are profiled in
//! `O(G)` via the workload-level decomposition; small launches are executed
//! functionally and their audited profiles are asserted against the analytic
//! ones in tests.

pub mod cachesim;
pub mod cost;
pub mod counters;
pub mod device;
pub mod exec;
pub mod launch;
pub mod profile;

pub use cost::{CostModel, GpuCost, StallBreakdown};
pub use counters::{run_metrics, GpuRunMetrics};
pub use device::{GpuSpec, NodeSpec};
pub use launch::LaunchConfig;
pub use profile::{profile_range4, WorkProfile};
