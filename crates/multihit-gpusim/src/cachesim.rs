//! Trace-based LRU cache simulation over gene-row accesses.
//!
//! Why does the Fig 5 ablation buy ~3× on a V100 but little wall time on a
//! host CPU? The optimizations cut *row fetches* 3:2:1 (audited in
//! [`multihit_core::memopt`]), but whether a fetch costs DRAM time depends
//! on where the row lives. This module replays the 3-hit kernel's row-access
//! trace through an LRU cache of configurable capacity:
//!
//! * at executed scale the whole matrix fits any host L2/L3 — hit rates are
//!   ~100% at every optimization level, so the CPU sees only the reduced
//!   instruction count;
//! * even with a small cache, LRU keeps the per-thread hot rows (`i`, `j`)
//!   resident, so *miss* counts are nearly identical across levels — the
//!   simulation demonstrates that MemOpt's 3:2:1 saving is **cache/DRAM
//!   access bandwidth**, not miss count. On a V100 the kernel is throughput-
//!   bound on exactly that bandwidth (§IV-C), which is what the cost model
//!   charges; on a CPU the L1 absorbs the extra accesses almost for free.
//!
//! LRU has the inclusion property, so miss counts are monotone in capacity
//! (tested), making the two regimes directly comparable.

use multihit_core::combin::tri;
use multihit_core::memopt::MemOptLevel;
use std::collections::HashMap;

/// Aggregate statistics of one trace replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Row accesses replayed.
    pub accesses: u64,
    /// Accesses served by the cache.
    pub hits: u64,
    /// Accesses that went to the next level (DRAM).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of accesses that missed.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully associative LRU cache over opaque row ids.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    clock: u64,
    stamp: HashMap<u64, u64>,
    pub(crate) stats: CacheStats,
}

impl LruCache {
    /// A cache holding `capacity` rows (0 = everything misses).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            clock: 0,
            stamp: HashMap::with_capacity(capacity + 1),
            stats: CacheStats::default(),
        }
    }

    /// Access a row; returns true on hit.
    pub fn access(&mut self, row: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        if self.capacity == 0 {
            self.stats.misses += 1;
            return false;
        }
        let hit = self.stamp.contains_key(&row);
        self.stamp.insert(row, self.clock);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            if self.stamp.len() > self.capacity {
                // Evict the least recently used entry.
                let (&victim, _) = self
                    .stamp
                    .iter()
                    .min_by_key(|&(_, &t)| t)
                    .expect("non-empty cache");
                self.stamp.remove(&victim);
            }
        }
        hit
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Replay the 3-hit kernel's row-access trace (2x1 scheme, all threads)
/// through a cache of `capacity_rows`, at the given optimization level.
///
/// Row ids: tumor row `g` = `g`, normal row `g` = `G + g`. Prefetched rows
/// live in thread-local memory and do not touch the cache inside the inner
/// loop — exactly the traffic the audit counts.
#[must_use]
pub fn simulate_3hit(g: u32, level: MemOptLevel, capacity_rows: usize) -> CacheStats {
    let mut cache = LruCache::new(capacity_rows);
    let gu = u64::from(g);
    for lambda in 0..tri(gu) {
        let (i, j) = multihit_core::combin::unrank_pair_fast(lambda);
        // Prefetch phase (counts as cold fetches once per thread).
        match level {
            MemOptLevel::NoOpt => {}
            MemOptLevel::Prefetch1 => {
                cache.access(u64::from(i));
                cache.access(gu + u64::from(i));
            }
            MemOptLevel::Prefetch2 => {
                for gene in [i, j] {
                    cache.access(u64::from(gene));
                    cache.access(gu + u64::from(gene));
                }
            }
        }
        for k in j + 1..g {
            match level {
                MemOptLevel::NoOpt => {
                    for gene in [i, j, k] {
                        cache.access(u64::from(gene));
                        cache.access(gu + u64::from(gene));
                    }
                }
                MemOptLevel::Prefetch1 => {
                    for gene in [j, k] {
                        cache.access(u64::from(gene));
                        cache.access(gu + u64::from(gene));
                    }
                }
                MemOptLevel::Prefetch2 => {
                    cache.access(u64::from(k));
                    cache.access(gu + u64::from(k));
                }
            }
        }
    }
    cache.stats()
}

/// The two cache regimes the module contrasts, in row-capacity units for a
/// given row footprint.
#[must_use]
pub fn capacity_rows(cache_bytes: u64, row_bytes: u64) -> usize {
    usize::try_from(cache_bytes / row_bytes.max(1)).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_basics() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // hit
        assert!(!c.access(3)); // evicts 2 (LRU)
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted
        assert_eq!(c.stats().accesses, 6);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut c = LruCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
        assert_eq!(c.stats().miss_rate(), 1.0);
    }

    #[test]
    fn lru_inclusion_property() {
        // More capacity never increases misses (LRU stack property).
        let trace: Vec<u64> = (0..4000u64).map(|i| (i * 37 + i * i / 7) % 97).collect();
        let mut last = u64::MAX;
        for cap in [4usize, 16, 48, 97] {
            let mut c = LruCache::new(cap);
            for &r in &trace {
                c.access(r);
            }
            assert!(c.stats().misses <= last, "cap {cap}");
            last = c.stats().misses;
        }
    }

    #[test]
    fn access_counts_match_the_audit_ratio() {
        // Inner accesses are 3:2:1 across levels (prefetch adds a small
        // per-thread term).
        let g = 40;
        let s0 = simulate_3hit(g, MemOptLevel::NoOpt, 10);
        let s1 = simulate_3hit(g, MemOptLevel::Prefetch1, 10);
        let s2 = simulate_3hit(g, MemOptLevel::Prefetch2, 10);
        let inner0 = s0.accesses;
        let threads = tri(u64::from(g));
        let inner1 = s1.accesses - 2 * threads;
        let inner2 = s2.accesses - 4 * threads;
        assert_eq!(inner0 % 3, 0);
        assert_eq!(inner0 / 3, inner2);
        assert_eq!(inner1, 2 * inner2);
    }

    #[test]
    fn big_cache_hits_everything_small_cache_does_not() {
        // Executed scale: the whole matrix (2G rows) fits a host cache —
        // hit rates near 1 at every level; a tiny cache misses plenty.
        let g = 60u32;
        for level in MemOptLevel::ALL {
            let big = simulate_3hit(g, level, 2 * g as usize);
            assert!(
                big.miss_rate() < 0.01,
                "{}: big-cache miss rate {}",
                level.name(),
                big.miss_rate()
            );
            let small = simulate_3hit(g, level, 6);
            assert!(
                small.miss_rate() > 0.2,
                "{}: small-cache miss rate {}",
                level.name(),
                small.miss_rate()
            );
        }
    }

    #[test]
    fn prefetch_saves_bandwidth_not_misses() {
        // The module's headline finding: with any cache that can hold a
        // thread's working set, NoOpt's extra accesses hit (LRU keeps i,j
        // resident) — misses stay comparable while total cache traffic
        // drops ~3×. The GPU gain is therefore bandwidth relief, which the
        // cost model charges; a CPU's L1 hides it.
        let g = 60u32;
        let cap = 8usize;
        let s0 = simulate_3hit(g, MemOptLevel::NoOpt, cap);
        let s2 = simulate_3hit(g, MemOptLevel::Prefetch2, cap);
        let miss_ratio = s0.misses as f64 / s2.misses as f64;
        assert!((0.7..1.5).contains(&miss_ratio), "miss ratio {miss_ratio}");
        let access_ratio = s0.accesses as f64 / s2.accesses as f64;
        assert!(access_ratio > 2.5, "access ratio {access_ratio}");
    }

    #[test]
    fn capacity_helper() {
        assert_eq!(capacity_rows(6 << 20, 160), 39321);
        assert_eq!(capacity_rows(100, 0), 100);
    }
}
