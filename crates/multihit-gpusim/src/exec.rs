//! Functional execution of the `maxF` / `parallelReduceMax` kernel pair on a
//! simulated GPU.
//!
//! [`run_maxf4`] / [`run_maxf3`] execute a contiguous λ-range of the chosen
//! scheme *literally*: each simulated thread prefetches the rows of its
//! fixed tuple coordinates (the MemOpt path), folds their AND once into a
//! reusable per-rank scratch, block-sweeps the streamed last coordinate
//! through [`kernel::and_popcount_block`] in
//! [`kernel::SWEEP_BLOCK`]-sized batches, and keeps its running best;
//! per-block (512-thread) single-stage reduction then the multi-stage tree
//! reduction produce the GPU's single 20-byte record — exactly the paper's
//! §III-E pipeline.
//!
//! Alongside the result, the executor audits its global traffic and emits
//! the [`WorkProfile`] the cost model consumes, so tests can assert the
//! analytic profile matches actual execution word for word.

use crate::profile::WorkProfile;
use multihit_core::bitmat::BitMatrix;
use multihit_core::kernel;
use multihit_core::par::{self, StealStats};
use multihit_core::reduce::{gpu_reduce, ReduceStats};
use multihit_core::schemes::{Scheme3, Scheme4};
use multihit_core::weight::{Alpha, Scored};

/// Outcome of executing one λ-range on one simulated GPU.
#[derive(Clone, Copy, Debug)]
pub struct ExecOutcome<const H: usize> {
    /// The GPU's single reduced record.
    pub best: Scored<H>,
    /// Audited work profile (drives the cost model).
    pub profile: WorkProfile,
    /// Reduction accounting (block records, tree stages).
    pub reduce: ReduceStats,
    /// Block-kernel invocations used to stream the last coordinate. Lives
    /// here rather than on [`WorkProfile`] because the profile is audited
    /// word-for-word against the analytic model, which is
    /// chunking-agnostic.
    pub block_sweeps: u64,
}

fn fold_and(dst: &mut [u64], row: &[u64]) {
    for (d, r) in dst.iter_mut().zip(row) {
        *d &= r;
    }
}

/// Reusable fold-partial scratch for one rank's kernel launches: the
/// prefix-AND accumulators are allocated once per executor call and rebuilt
/// in place per prefix, so the thread loop performs no heap allocation.
struct FoldScratch {
    acc_t: Vec<u64>,
    acc_n: Vec<u64>,
}

impl FoldScratch {
    fn new(wt: usize, wn: usize) -> Self {
        FoldScratch {
            acc_t: vec![u64::MAX; wt],
            acc_n: vec![u64::MAX; wn],
        }
    }

    /// Rebuild both partials as the AND of `prefix`'s rows.
    fn rebuild(&mut self, tumor: &BitMatrix, normal: &BitMatrix, prefix: &[u32]) {
        self.acc_t.fill(u64::MAX);
        self.acc_n.fill(u64::MAX);
        for &gene in prefix {
            fold_and(&mut self.acc_t, tumor.row(gene as usize));
            fold_and(&mut self.acc_n, normal.row(gene as usize));
        }
    }
}

/// Score the streamed last coordinates `range` against the prefix partials
/// in [`kernel::SWEEP_BLOCK`]-sized batches through the block kernels,
/// handing each scored combination to `emit`. Returns the number of block
/// kernel invocations (counted per matrix pair, not per side).
fn sweep_last_coord<E: FnMut(u32, u32, u32)>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    scratch: &FoldScratch,
    range: std::ops::Range<u32>,
    n_norm: u32,
    mut emit: E,
) -> u64 {
    let mut sweeps = 0u64;
    let mut rows_t: [&[u64]; kernel::SWEEP_BLOCK] = [&[]; kernel::SWEEP_BLOCK];
    let mut rows_n: [&[u64]; kernel::SWEEP_BLOCK] = [&[]; kernel::SWEEP_BLOCK];
    let mut out_t = [0u32; kernel::SWEEP_BLOCK];
    let mut out_n = [0u32; kernel::SWEEP_BLOCK];
    let mut base = range.start;
    while base < range.end {
        let chunk = ((range.end - base) as usize).min(kernel::SWEEP_BLOCK);
        for r in 0..chunk {
            rows_t[r] = tumor.row((base + r as u32) as usize);
            rows_n[r] = normal.row((base + r as u32) as usize);
        }
        kernel::and_popcount_block(&scratch.acc_t, &rows_t[..chunk], &mut out_t[..chunk]);
        kernel::and_popcount_block(&scratch.acc_n, &rows_n[..chunk], &mut out_n[..chunk]);
        sweeps += 1;
        for r in 0..chunk {
            emit(base + r as u32, out_t[r], n_norm - out_n[r]);
        }
        base += chunk as u32;
    }
    sweeps
}

/// Execute the 4-hit `maxF` kernel over threads `[lo, hi)` of `scheme`.
///
/// # Panics
/// Panics if the matrices disagree on gene count.
#[must_use]
pub fn run_maxf4(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    scheme: Scheme4,
    lo: u64,
    hi: u64,
    block_size: usize,
) -> ExecOutcome<4> {
    run_maxf4_sink(tumor, normal, alpha, scheme, lo, hi, block_size, |_| {})
}

/// [`run_maxf4`] that additionally retains the GPU's top-`k` scored
/// combinations (the lazy-greedy frontier shard), selected with the same
/// rule as [`multihit_core::reduce::top_k`]. The [`ExecOutcome`] — winner,
/// audited profile, reduction stats — is identical to [`run_maxf4`]'s.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_maxf4_topk(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    scheme: Scheme4,
    lo: u64,
    hi: u64,
    block_size: usize,
    k: usize,
) -> (ExecOutcome<4>, Vec<Scored<4>>) {
    let mut acc = multihit_core::frontier::TopK::new(k);
    let out = run_maxf4_sink(tumor, normal, alpha, scheme, lo, hi, block_size, |s| {
        acc.offer(*s);
    });
    (out, acc.into_sorted())
}

/// The shared `maxF` body: every scored combination is also offered to
/// `sink` (a no-op closure for the plain argmax path, monomorphized away).
#[allow(clippy::too_many_arguments)]
fn run_maxf4_sink<F: FnMut(&Scored<4>)>(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    scheme: Scheme4,
    lo: u64,
    hi: u64,
    block_size: usize,
    mut sink: F,
) -> ExecOutcome<4> {
    assert_eq!(tumor.n_genes(), normal.n_genes());
    let g = tumor.n_genes() as u32;
    let wt = tumor.words_per_row();
    let wn = normal.words_per_row();
    let w = (wt + wn) as u64;
    let n_norm = normal.n_samples() as u32;

    let mut profile = WorkProfile::default();
    let mut block_sweeps = 0u64;
    // Fold-partial scratch is hoisted out of the thread loop and rebuilt in
    // place per prefix — no allocation inside the λ loop.
    let mut scratch = FoldScratch::new(wt, wn);
    let per_thread: Vec<Scored<4>> = (lo..hi)
        .map(|lambda| {
            let mut best = Scored::NEG_INFINITY;
            let mut inner = 0u64;
            // Thread body: prefetch the fixed coordinates once per prefix,
            // then block-sweep the streamed last coordinate against the
            // register-resident partial.
            scheme.for_each_prefix(lambda, g, |fx, range| {
                // (Re)build the prefetched partial AND. For 3x1 this
                // happens once per thread; for 2x2, once per k.
                scratch.rebuild(tumor, normal, &fx);
                block_sweeps +=
                    sweep_last_coord(tumor, normal, &scratch, range, n_norm, |last, tp, tn| {
                        inner += 1;
                        let s = Scored {
                            score: alpha.score(tp, tn),
                            tp,
                            tn,
                            genes: [fx[0], fx[1], fx[2], last],
                        };
                        sink(&s);
                        best = best.max_det(s);
                    });
            });
            profile.n_threads += 1;
            profile.combos += inner;
            profile.inner_words += inner * w;
            profile.prefetch_words += crate::profile::prefetch_depth4(scheme) * w;
            profile.ops += inner * 2 * w;
            let t = crate::profile::inner_len4(scheme, lambda, g);
            profile.inv_inner_sum += 1.0 / (t as f64 + 1.0);
            best
        })
        .collect();

    let (best, reduce) = gpu_reduce(&per_thread, block_size);
    ExecOutcome {
        best,
        profile,
        reduce,
        block_sweeps,
    }
}

/// [`run_maxf4`] with observability: wraps the launch in a `kernel` span,
/// emits one `kernel` point (λ-range, audited combos/words, wall
/// `kernel_ns`) and folds the audit into `exec.*` counters.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_maxf4_obs(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    scheme: Scheme4,
    lo: u64,
    hi: u64,
    block_size: usize,
    obs: &multihit_core::obs::Obs,
) -> ExecOutcome<4> {
    let span = obs.span("kernel");
    let start = std::time::Instant::now();
    let out = run_maxf4(tumor, normal, alpha, scheme, lo, hi, block_size);
    let kernel_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if obs.is_enabled() {
        obs.point(
            "kernel",
            &[
                ("scheme", scheme.name().into()),
                ("lo", lo.into()),
                ("hi", hi.into()),
                ("kernel_ns", kernel_ns.into()),
                ("combos", out.profile.combos.into()),
                ("inner_words", out.profile.inner_words.into()),
                ("prefetch_words", out.profile.prefetch_words.into()),
                ("block_sweeps", out.block_sweeps.into()),
            ],
        );
        obs.counter_add("exec.launches", 1);
        obs.counter_add("exec.combos", out.profile.combos);
        obs.counter_add("exec.inner_words", out.profile.inner_words);
        obs.counter_add("exec.prefetch_words", out.profile.prefetch_words);
        obs.counter_add("exec.kernel_ns", kernel_ns);
        obs.counter_add("exec.block_sweeps", out.block_sweeps);
    }
    drop(span);
    out
}

/// Execute the 3-hit `maxF` kernel over threads `[lo, hi)` of `scheme`.
#[must_use]
pub fn run_maxf3(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    scheme: Scheme3,
    lo: u64,
    hi: u64,
    block_size: usize,
) -> ExecOutcome<3> {
    assert_eq!(tumor.n_genes(), normal.n_genes());
    let g = tumor.n_genes() as u32;
    let wt = tumor.words_per_row();
    let wn = normal.words_per_row();
    let w = (wt + wn) as u64;
    let n_norm = normal.n_samples() as u32;

    let mut profile = WorkProfile::default();
    let mut block_sweeps = 0u64;
    let mut scratch = FoldScratch::new(wt, wn);
    let per_thread: Vec<Scored<3>> = (lo..hi)
        .map(|lambda| {
            let mut best = Scored::NEG_INFINITY;
            let mut inner = 0u64;
            scheme.for_each_prefix(lambda, g, |fx, range| {
                scratch.rebuild(tumor, normal, &fx);
                block_sweeps +=
                    sweep_last_coord(tumor, normal, &scratch, range, n_norm, |last, tp, tn| {
                        inner += 1;
                        best = best.max_det(Scored {
                            score: alpha.score(tp, tn),
                            tp,
                            tn,
                            genes: [fx[0], fx[1], last],
                        });
                    });
            });
            profile.n_threads += 1;
            profile.combos += inner;
            profile.inner_words += inner * w;
            profile.prefetch_words += 2 * w;
            profile.ops += inner * 2 * w;
            let t = crate::profile::inner_len3(scheme, lambda, g);
            profile.inv_inner_sum += 1.0 / (t as f64 + 1.0);
            best
        })
        .collect();

    let (best, reduce) = gpu_reduce(&per_thread, block_size);
    ExecOutcome {
        best,
        profile,
        reduce,
        block_sweeps,
    }
}

/// Execute the full 4-hit range of a scheme split across several simulated
/// GPUs, returning per-GPU outcomes in range order. GPUs are dispatched by a
/// work-stealing cursor ([`par::par_map_indexed`]) so one heavy λ-partition
/// cannot serialize the others behind a static round-robin; the caller is
/// responsible for the rank-0 reduction across GPUs.
#[must_use]
pub fn run_gpus4(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    scheme: Scheme4,
    ranges: &[(u64, u64)],
    block_size: usize,
) -> Vec<ExecOutcome<4>> {
    run_gpus4_stats(tumor, normal, alpha, scheme, ranges, block_size).0
}

/// [`run_gpus4`] plus the scheduling counters of the GPU dispatch.
#[must_use]
pub fn run_gpus4_stats(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    scheme: Scheme4,
    ranges: &[(u64, u64)],
    block_size: usize,
) -> (Vec<ExecOutcome<4>>, StealStats) {
    par::par_map_indexed(ranges.len(), par::default_workers(), |i| {
        let (lo, hi) = ranges[i];
        run_maxf4(tumor, normal, alpha, scheme, lo, hi, block_size)
    })
}

/// [`run_gpus4`] with observability: emits one `gpu_fleet` point (ranges,
/// wall time, steal accounting, kernel dispatch) and `exec.steal_*`
/// counters.
#[must_use]
pub fn run_gpus4_obs(
    tumor: &BitMatrix,
    normal: &BitMatrix,
    alpha: Alpha,
    scheme: Scheme4,
    ranges: &[(u64, u64)],
    block_size: usize,
    obs: &multihit_core::obs::Obs,
) -> Vec<ExecOutcome<4>> {
    let span = obs.span("gpu_fleet");
    let start = std::time::Instant::now();
    let (outs, steals) = run_gpus4_stats(tumor, normal, alpha, scheme, ranges, block_size);
    let fleet_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if obs.is_enabled() {
        obs.point(
            "gpu_fleet",
            &[
                ("scheme", scheme.name().into()),
                ("gpus", ranges.len().into()),
                ("fleet_ns", fleet_ns.into()),
                ("steal_blocks", steals.blocks.into()),
                ("steals", steals.steals.into()),
                ("kernel", kernel::active().name().into()),
            ],
        );
        obs.counter_add("exec.fleet_launches", 1);
        obs.counter_add("exec.steal_blocks", steals.blocks);
        obs.counter_add("exec.steals", steals.steals);
    }
    drop(span);
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihit_core::combin::binomial;
    use multihit_core::greedy::{best_combination, GreedyConfig};
    use multihit_core::reduce::rank0_reduce;

    fn lcg_matrices(g: usize, nt: usize, nn: usize, seed: u64) -> (BitMatrix, BitMatrix) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = BitMatrix::zeros(g, nt);
        let mut n = BitMatrix::zeros(g, nn);
        for gene in 0..g {
            for s in 0..nt {
                if next() % 2 == 0 {
                    t.set(gene, s, true);
                }
            }
            for s in 0..nn {
                if next() % 5 == 0 {
                    n.set(gene, s, true);
                }
            }
        }
        (t, n)
    }

    #[test]
    fn kernel_matches_reference_for_both_schemes() {
        let (t, n) = lcg_matrices(12, 96, 64, 4);
        let cfg = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        let expect = best_combination::<4>(&t, &n, None, &cfg);
        for scheme in [Scheme4::TwoXTwo, Scheme4::ThreeXOne] {
            let nthreads = scheme.thread_count(12);
            let out = run_maxf4(&t, &n, Alpha::PAPER, scheme, 0, nthreads, 512);
            assert_eq!(out.best, expect, "{}", scheme.name());
            assert_eq!(out.profile.combos, binomial(12, 4));
        }
    }

    #[test]
    fn three_hit_kernel_matches_reference() {
        let (t, n) = lcg_matrices(13, 70, 50, 9);
        let cfg = GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        };
        let expect = best_combination::<3>(&t, &n, None, &cfg);
        let out = run_maxf3(
            &t,
            &n,
            Alpha::PAPER,
            Scheme3::TwoXOne,
            0,
            binomial(13, 2),
            512,
        );
        assert_eq!(out.best, expect);
    }

    #[test]
    fn split_ranges_reduce_to_the_same_winner() {
        let (t, n) = lcg_matrices(11, 64, 64, 17);
        let scheme = Scheme4::ThreeXOne;
        let total = scheme.thread_count(11);
        let whole = run_maxf4(&t, &n, Alpha::PAPER, scheme, 0, total, 512);
        let cuts = [0, total / 5, total / 2, 3 * total / 4, total];
        let ranges: Vec<(u64, u64)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
        let outs = run_gpus4(&t, &n, Alpha::PAPER, scheme, &ranges, 128);
        let per_gpu: Vec<_> = outs.iter().map(|o| o.best).collect();
        assert_eq!(rank0_reduce(&per_gpu), whole.best);
        let combos: u64 = outs.iter().map(|o| o.profile.combos).sum();
        assert_eq!(combos, whole.profile.combos);
    }

    #[test]
    fn audited_profile_matches_analytic_profile() {
        let (t, n) = lcg_matrices(15, 128, 64, 3);
        let w = (t.words_per_row() + n.words_per_row()) as u64;
        for scheme in [Scheme4::ThreeXOne, Scheme4::TwoXTwo] {
            let total = scheme.thread_count(15);
            let lo = total / 4;
            let hi = 3 * total / 4;
            let out = run_maxf4(&t, &n, Alpha::PAPER, scheme, lo, hi, 512);
            let analytic = crate::profile::profile_range4(scheme, 15, w, lo, hi);
            assert_eq!(
                out.profile.n_threads,
                analytic.n_threads,
                "{}",
                scheme.name()
            );
            assert_eq!(out.profile.combos, analytic.combos, "{}", scheme.name());
            assert_eq!(
                out.profile.prefetch_words,
                analytic.prefetch_words,
                "{}",
                scheme.name()
            );
            assert!(
                (out.profile.inv_inner_sum - analytic.inv_inner_sum).abs() < 1e-9,
                "{}",
                scheme.name()
            );
            if scheme == Scheme4::ThreeXOne {
                // 3x1 audits inner reads identically; 2x2's audit counts the
                // mid-loop rebuild via the prefetch path instead.
                assert_eq!(out.profile.inner_words, analytic.inner_words);
            }
        }
    }

    #[test]
    fn topk_kernel_matches_plain_kernel_and_exhaustive_topk() {
        use multihit_core::combin::unrank_tuple;
        use multihit_core::reduce::top_k;
        use multihit_core::weight::score_combo;
        let (t, n) = lcg_matrices(11, 96, 64, 29);
        let all: Vec<Scored<4>> = (0..binomial(11, 4))
            .map(|l| score_combo(&t, &n, &unrank_tuple::<4>(l), Alpha::PAPER))
            .collect();
        for scheme in [Scheme4::ThreeXOne, Scheme4::TwoXTwo] {
            let total = scheme.thread_count(11);
            let plain = run_maxf4(&t, &n, Alpha::PAPER, scheme, 0, total, 512);
            for k in [1usize, 8, 64] {
                let (out, shard) = run_maxf4_topk(&t, &n, Alpha::PAPER, scheme, 0, total, 512, k);
                assert_eq!(out.best, plain.best, "{} k={k}", scheme.name());
                assert_eq!(out.profile, plain.profile, "{} k={k}", scheme.name());
                assert_eq!(out.reduce, plain.reduce, "{} k={k}", scheme.name());
                assert_eq!(shard, top_k(&all, k), "{} k={k}", scheme.name());
            }
            // Split ranges: merged shards must equal the whole-range shard.
            let cuts = [0, total / 3, total / 2, total];
            let shards: Vec<Vec<Scored<4>>> = cuts
                .windows(2)
                .map(|w| run_maxf4_topk(&t, &n, Alpha::PAPER, scheme, w[0], w[1], 512, 8).1)
                .collect();
            assert_eq!(
                multihit_core::reduce::merge_top_k(&shards, 8),
                top_k(&all, 8),
                "{}",
                scheme.name()
            );
        }
    }

    #[test]
    fn block_sweep_count_matches_chunk_arithmetic() {
        let (t, n) = lcg_matrices(40, 64, 32, 11);
        let g = 40u32;
        for scheme in [Scheme4::TwoXTwo, Scheme4::ThreeXOne, Scheme4::FourXOne] {
            let total = scheme.thread_count(g);
            let out = run_maxf4(&t, &n, Alpha::PAPER, scheme, 0, total, 512);
            let mut expect = 0u64;
            for l in 0..total {
                scheme.for_each_prefix(l, g, |_, range| {
                    expect +=
                        u64::from(range.end - range.start).div_ceil(kernel::SWEEP_BLOCK as u64);
                });
            }
            assert_eq!(out.block_sweeps, expect, "{}", scheme.name());
            assert!(out.block_sweeps > 0, "{}", scheme.name());
        }
    }

    #[test]
    fn block_records_follow_thread_count() {
        let (t, n) = lcg_matrices(10, 64, 32, 6);
        let scheme = Scheme4::ThreeXOne;
        let total = scheme.thread_count(10); // 120 threads
        let out = run_maxf4(&t, &n, Alpha::PAPER, scheme, 0, total, 32);
        assert_eq!(out.reduce.block_records, total.div_ceil(32));
    }
}
