//! Device specifications for the simulated GPU and its cost model
//! constants.
//!
//! The defaults describe an NVIDIA V100-SXM2-16GB as deployed in Summit
//! nodes (§III-A): 80 SMs, 32-thread warps, 16 GB HBM2 at ~900 GB/s, and the
//! paper's CUDA launch geometry (512-thread blocks). The *model* constants
//! (occupancy target, per-thread setup cycles, launch overhead) are fixed
//! once here for the whole reproduction — see DESIGN.md's calibration note;
//! no experiment tunes them individually.

/// Simulated GPU specification and cost-model constants.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Threads per block used by the `maxF` kernel (paper: 512).
    pub block_size: u32,
    /// Resident threads per SM at full occupancy.
    pub max_threads_per_sm: u32,
    /// Global (device) memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Peak DRAM bandwidth, bytes per second.
    pub dram_peak_bps: f64,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Aggregate integer-op throughput, operations per cycle (all SMs).
    pub int_ops_per_cycle: f64,
    /// Fraction of peak DRAM bandwidth achievable by a fully occupied,
    /// perfectly coalesced streaming kernel.
    pub bw_efficiency_peak: f64,
    /// Occupancy (fraction of `occupancy_target` threads resident) at which
    /// latency hiding reaches half of its asymptote.
    pub occupancy_knee: f64,
    /// Cycles of per-thread setup: λ → (i,j,k) index math (including the
    /// §III-F log/exp evaluation) plus prefetch issue.
    pub thread_setup_cycles: f64,
    /// Fixed kernel-launch + driver overhead per kernel invocation, seconds.
    pub launch_overhead_s: f64,
}

impl GpuSpec {
    /// The V100 as configured in Summit nodes, with the model constants used
    /// throughout this reproduction.
    #[must_use]
    pub fn v100_summit() -> Self {
        GpuSpec {
            name: "V100-SXM2-16GB",
            sm_count: 80,
            warp_size: 32,
            block_size: 512,
            max_threads_per_sm: 2048,
            global_mem_bytes: 16 * (1 << 30),
            dram_peak_bps: 900.0e9,
            clock_hz: 1.53e9,
            int_ops_per_cycle: 80.0 * 64.0,
            bw_efficiency_peak: 0.85,
            occupancy_knee: 0.08,
            thread_setup_cycles: 220.0,
            launch_overhead_s: 25.0e-6,
        }
    }

    /// Threads needed for full occupancy across the device.
    #[must_use]
    pub fn occupancy_target(&self) -> u64 {
        u64::from(self.sm_count) * u64::from(self.max_threads_per_sm)
    }

    /// DRAM bandwidth in bytes per core cycle.
    #[must_use]
    pub fn bytes_per_cycle(&self) -> f64 {
        self.dram_peak_bps / self.clock_hz
    }
}

/// A Summit-like node: host CPUs plus attached GPUs. One MPI rank serves one
/// node in the paper's deployment (Fig 1).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    /// GPUs per node (Summit: 6 V100s).
    pub gpus_per_node: u32,
    /// Host memory per node, bytes (Summit: 512 GB).
    pub host_mem_bytes: u64,
    /// GPU specification for the node's devices.
    pub gpu: GpuSpec,
}

impl NodeSpec {
    /// A Summit node: 2 Power9 CPUs (abstracted to one rank), 6 V100s,
    /// 512 GB host memory.
    #[must_use]
    pub fn summit() -> Self {
        NodeSpec {
            gpus_per_node: 6,
            host_mem_bytes: 512 * (1 << 30),
            gpu: GpuSpec::v100_summit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_shape_matches_paper() {
        let g = GpuSpec::v100_summit();
        assert_eq!(g.sm_count, 80);
        assert_eq!(g.warp_size, 32);
        assert_eq!(g.block_size, 512);
        assert_eq!(g.global_mem_bytes, 16 << 30);
        // "thousands of processing cores": 80 × 64 = 5120 integer lanes.
        assert!(g.int_ops_per_cycle >= 5000.0);
    }

    #[test]
    fn summit_node_shape() {
        let n = NodeSpec::summit();
        assert_eq!(n.gpus_per_node, 6);
        assert_eq!(n.host_mem_bytes, 512 << 30);
        // 1000 nodes × 6 GPUs = the paper's 6000 GPUs;
        // ≈48e6 processing cores at 8192 threads... the paper counts CUDA
        // cores: 6000 × 5120 ≈ 30.7e6; with tensor lanes ≈48e6. Shape only.
        assert_eq!(1000 * n.gpus_per_node, 6000);
    }

    #[test]
    fn occupancy_target_is_plausible() {
        let g = GpuSpec::v100_summit();
        assert_eq!(g.occupancy_target(), 163_840);
    }

    #[test]
    fn bytes_per_cycle_is_consistent() {
        let g = GpuSpec::v100_summit();
        let bpc = g.bytes_per_cycle();
        assert!((bpc - 900.0e9 / 1.53e9).abs() < 1e-9);
        assert!(bpc > 500.0 && bpc < 700.0);
    }
}
