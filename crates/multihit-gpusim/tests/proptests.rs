//! Property-based tests for the GPU substrate: profile additivity over
//! random cuts, cost-model monotonicity, stall normalization, and
//! functional/analytic agreement at random λ-ranges.

use multihit_core::bitmat::BitMatrix;
use multihit_core::schemes::Scheme4;
use multihit_core::weight::Alpha;
use multihit_gpusim::cost::CostModel;
use multihit_gpusim::device::GpuSpec;
use multihit_gpusim::exec::run_maxf4;
use multihit_gpusim::profile::{kernel_levels4, profile_partitions, profile_range4, WorkProfile};
use proptest::prelude::*;

fn model() -> CostModel {
    CostModel::new(GpuSpec::v100_summit())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn profile_additive_over_random_cuts(
        g in 10u32..120,
        cuts in prop::collection::vec(0.0f64..1.0, 1..6),
        w in 1u64..32,
    ) {
        let scheme = Scheme4::ThreeXOne;
        let n = scheme.thread_count(g);
        let mut bounds: Vec<u64> = cuts.iter().map(|c| (c * n as f64) as u64).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();
        let whole = profile_range4(scheme, g, w, 0, n);
        let merged = bounds
            .windows(2)
            .map(|b| profile_range4(scheme, g, w, b[0], b[1]))
            .fold(WorkProfile::default(), WorkProfile::merge);
        prop_assert_eq!(merged.combos, whole.combos);
        prop_assert_eq!(merged.inner_words, whole.inner_words);
        prop_assert_eq!(merged.prefetch_words, whole.prefetch_words);
        prop_assert_eq!(merged.ops, whole.ops);
        prop_assert!((merged.inv_inner_sum - whole.inv_inner_sum).abs() < 1e-6);
    }

    #[test]
    fn batch_profiles_match_individual(
        g in 10u32..100,
        k in 2usize..8,
        w in 1u64..16,
    ) {
        let scheme = Scheme4::TwoXTwo;
        let n = scheme.thread_count(g);
        let levels = kernel_levels4(scheme, g);
        let bounds: Vec<(u64, u64)> = (0..k as u64)
            .map(|i| (i * n / k as u64, (i + 1) * n / k as u64))
            .collect();
        let batch = profile_partitions(&levels, &bounds, w, 2, true);
        for (b, &(lo, hi)) in batch.iter().zip(&bounds) {
            prop_assert_eq!(b, &profile_range4(scheme, g, w, lo, hi));
        }
    }

    #[test]
    fn cost_monotone_in_range_width(
        g in 50u32..300,
        frac in 0.05f64..0.95,
        w in 1u64..24,
    ) {
        let scheme = Scheme4::ThreeXOne;
        let n = scheme.thread_count(g);
        let mid = ((n as f64) * frac) as u64;
        prop_assume!(mid > 0 && mid < n);
        let m = model();
        let part = m.evaluate(&profile_range4(scheme, g, w, 0, mid));
        let full = m.evaluate(&profile_range4(scheme, g, w, 0, n));
        prop_assert!(full.time_s >= part.time_s, "full {} < part {}", full.time_s, part.time_s);
        prop_assert!(full.bytes >= part.bytes);
    }

    #[test]
    fn cost_outputs_are_physical(
        g in 20u32..400,
        lo_f in 0.0f64..0.8,
        len_f in 0.01f64..0.2,
        w in 1u64..32,
    ) {
        let scheme = Scheme4::ThreeXOne;
        let n = scheme.thread_count(g);
        let lo = (lo_f * n as f64) as u64;
        let hi = (lo + (len_f * n as f64) as u64 + 1).min(n);
        let m = model();
        let c = m.evaluate(&profile_range4(scheme, g, w, lo, hi));
        prop_assert!(c.time_s > 0.0 && c.time_s.is_finite());
        prop_assert!((0.0..=1.0).contains(&c.occupancy));
        prop_assert!(c.bw_fraction > 0.0 && c.bw_fraction <= m.spec.bw_efficiency_peak + 1e-12);
        prop_assert!(c.dram_gbps() <= m.spec.dram_peak_bps / 1e9 + 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c.issue_efficiency()));
        let s = m.stalls(&c);
        prop_assert!((s.total() - (1.0 - c.issue_efficiency())).abs() < 1e-9);
        prop_assert!(s.memory_dependency >= 0.0 && s.memory_throttle >= 0.0);
    }
}

fn lcg_matrices(g: usize, nt: usize, nn: usize, seed: u64) -> (BitMatrix, BitMatrix) {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut t = BitMatrix::zeros(g, nt);
    let mut n = BitMatrix::zeros(g, nn);
    for gene in 0..g {
        for s in 0..nt {
            if next() % 2 == 0 {
                t.set(gene, s, true);
            }
        }
        for s in 0..nn {
            if next() % 4 == 0 {
                n.set(gene, s, true);
            }
        }
    }
    (t, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exec_agrees_with_analytic_profile_on_random_ranges(
        seed in 0u64..5000,
        lo_f in 0.0f64..0.9,
        len_f in 0.02f64..0.3,
    ) {
        let (t, n) = lcg_matrices(12, 70, 40, seed);
        let scheme = Scheme4::ThreeXOne;
        let total = scheme.thread_count(12);
        let lo = (lo_f * total as f64) as u64;
        let hi = (lo + (len_f * total as f64) as u64 + 1).min(total);
        let out = run_maxf4(&t, &n, Alpha::PAPER, scheme, lo, hi, 64);
        let w = (t.words_per_row() + n.words_per_row()) as u64;
        let analytic = profile_range4(scheme, 12, w, lo, hi);
        prop_assert_eq!(out.profile.combos, analytic.combos);
        prop_assert_eq!(out.profile.inner_words, analytic.inner_words);
        prop_assert_eq!(out.profile.n_threads, analytic.n_threads);
    }
}
