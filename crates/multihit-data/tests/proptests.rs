//! Property-based tests for the data substrate: MAF round-tripping with
//! arbitrary records, split partitioning, classifier/CI bounds, and
//! generator invariants.

use multihit_core::bitmat::BitMatrix;
use multihit_data::classify::{ComboClassifier, Proportion};
use multihit_data::maf::{parse_maf, summarize, write_maf, MafRecord};
use multihit_data::split::{split_indices, take_columns};
use multihit_data::synth::{generate, CohortSpec};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_symbol() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9]{1,6}"
}

fn arb_record() -> impl Strategy<Value = MafRecord> {
    (
        arb_symbol(),
        "[A-Z]{2}-[0-9]{2}",
        prop::sample::select(vec![
            "Missense_Mutation",
            "Nonsense_Mutation",
            "Silent",
            "Frame_Shift_Del",
            "Intron",
        ]),
        prop::option::of(1u32..3000),
    )
        .prop_map(
            |(hugo_symbol, sample_barcode, class, protein_position)| MafRecord {
                hugo_symbol,
                sample_barcode,
                variant_classification: class.to_string(),
                protein_position,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn maf_roundtrips_arbitrary_records(records in prop::collection::vec(arb_record(), 0..60)) {
        let text = write_maf(&records);
        let back = parse_maf(&text).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn summarize_counts_protein_altering_only(records in prop::collection::vec(arb_record(), 0..60)) {
        let mut genes: Vec<String> = records.iter().map(|r| r.hugo_symbol.clone()).collect();
        genes.sort();
        genes.dedup();
        let index: HashMap<String, usize> =
            genes.iter().enumerate().map(|(i, g)| (g.clone(), i)).collect();
        let s = summarize(&records, &index);
        let altering = records
            .iter()
            .filter(|r| multihit_data::maf::is_protein_altering(&r.variant_classification))
            .count();
        prop_assert_eq!(s.silent_skipped, records.len() - altering);
        prop_assert_eq!(s.unknown_genes, 0);
        // Every set bit is justified by at least one altering record.
        let total_bits: u32 = (0..s.matrix.n_genes()).map(|g| s.matrix.row_popcount(g)).sum();
        prop_assert!(total_bits as usize <= altering);
    }

    #[test]
    fn split_partitions_exactly(n in 1usize..500, frac in 0.05f64..0.95, seed in 0u64..1000) {
        let s = split_indices(n, frac, seed);
        let mut all = s.train.clone();
        all.extend(&s.test);
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(s.train.len(), ((n as f64) * frac).ceil() as usize);
    }

    #[test]
    fn take_columns_then_reassemble(n_cols in 1usize..150, seed in 0u64..500) {
        let mut m = BitMatrix::zeros(3, n_cols);
        let mut state = seed | 1;
        for g in 0..3 {
            for s in 0..n_cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (state >> 33) % 2 == 0 {
                    m.set(g, s, true);
                }
            }
        }
        let split = split_indices(n_cols, 0.6, seed);
        let a = take_columns(&m, &split.train);
        let b = take_columns(&m, &split.test);
        prop_assert_eq!(a.n_samples() + b.n_samples(), n_cols);
        let bits = |x: &BitMatrix| -> u32 { (0..3).map(|g| x.row_popcount(g)).sum() };
        prop_assert_eq!(bits(&a) + bits(&b), bits(&m));
    }

    #[test]
    fn wilson_ci_always_brackets(hits in 0usize..200, extra in 0usize..200, z in 0.5f64..4.0) {
        let total = hits + extra;
        prop_assume!(total > 0);
        let p = Proportion::new(hits, total);
        let (lo, hi) = p.wilson_ci(z);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p.value() + 1e-12 && p.value() <= hi + 1e-12);
    }

    #[test]
    fn classifier_monotone_in_combinations(seed in 0u64..300) {
        // Adding a combination can only increase positive calls.
        let cohort = generate(&CohortSpec { seed, ..CohortSpec::default() });
        let mut clf = ComboClassifier::default();
        let mut last = 0usize;
        for combo in cohort.planted.iter().take(3) {
            clf.combinations.push(combo.clone());
            let now = clf.count_positive(&cohort.tumor);
            prop_assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn generator_driver_genes_within_universe(
        g in 12usize..60,
        combos in 1usize..4,
        h in 2usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(combos * h <= g);
        let c = generate(&CohortSpec {
            n_genes: g,
            n_driver_combos: combos,
            hits_per_combo: h,
            seed,
            ..CohortSpec::default()
        });
        for gene in c.driver_genes() {
            prop_assert!((gene as usize) < g);
        }
        prop_assert_eq!(c.planted.len(), combos);
        prop_assert_eq!(c.assignment.len(), c.tumor.n_samples());
        prop_assert!(c.tumor.tail_is_clean() && c.normal.tail_is_clean());
    }
}
