//! Within-gene mutation **position** modeling — the driver-vs-passenger
//! analysis behind the paper's Fig 10 and §V discussion.
//!
//! The paper's case study: in the top LGG 4-hit combination, IDH1 mutations
//! concentrate at amino-acid position 132 (400 of 532 tumor samples, 0 of
//! 329 normals) — a known driver hotspot — while MUC6 mutations scatter
//! uniformly in tumors and normals alike — passengers. This module generates
//! position-resolved mutations under exactly those two regimes and provides
//! the histogram/statistic machinery to tell them apart.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How a gene's mutations distribute across its positions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PositionModel {
    /// Driver regime: fraction `concentration` of tumor mutations land on
    /// `hotspot`; the rest (and all normal mutations) are uniform.
    Hotspot {
        /// 1-based amino-acid hotspot position (IDH1: 132).
        hotspot: u32,
        /// Fraction of tumor-sample mutations at the hotspot.
        concentration: f64,
    },
    /// Passenger regime: uniform positions in tumors and normals.
    Uniform,
}

/// Position-resolved mutation calls for one gene.
#[derive(Clone, Debug)]
pub struct PositionProfile {
    /// Gene symbol.
    pub gene: String,
    /// Protein length in amino acids.
    pub length: u32,
    /// Tumor mutation positions (1-based), one entry per mutated sample.
    pub tumor_positions: Vec<u32>,
    /// Normal mutation positions.
    pub normal_positions: Vec<u32>,
}

impl PositionProfile {
    /// Histogram of positions over `bins` equal-width bins, as *percentages*
    /// of samples in the cohort (the paper's Fig 10 y-axis).
    #[must_use]
    pub fn histogram(&self, positions: &[u32], bins: usize, cohort_size: usize) -> Vec<f64> {
        let mut h = vec![0.0; bins];
        if cohort_size == 0 || self.length == 0 {
            return h;
        }
        for &p in positions {
            let b = (((p.saturating_sub(1)) as usize * bins) / self.length as usize).min(bins - 1);
            h[b] += 100.0 / cohort_size as f64;
        }
        h
    }

    /// The largest fraction of tumor mutations landing on a single position —
    /// the hotspot statistic. ≈ `concentration` for drivers, ≈ `1/length`
    /// for passengers.
    #[must_use]
    pub fn tumor_hotspot_fraction(&self) -> f64 {
        peak_fraction(&self.tumor_positions)
    }

    /// The position carrying the most tumor mutations, if any.
    #[must_use]
    pub fn tumor_hotspot_position(&self) -> Option<u32> {
        mode(&self.tumor_positions)
    }

    /// Simple driver call: a gene looks like a driver when tumor mutations
    /// pile on one position that normals avoid.
    #[must_use]
    pub fn looks_like_driver(&self, min_fraction: f64) -> bool {
        let frac = self.tumor_hotspot_fraction();
        if frac < min_fraction {
            return false;
        }
        match self.tumor_hotspot_position() {
            None => false,
            Some(p) => {
                let n_at = self.normal_positions.iter().filter(|&&q| q == p).count();
                let t_at = self.tumor_positions.iter().filter(|&&q| q == p).count();
                // Tumor enrichment at the hotspot dominates normals.
                n_at * 10 < t_at.max(1)
            }
        }
    }
}

fn mode(xs: &[u32]) -> Option<u32> {
    let mut counts = std::collections::HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)))
        .map(|(p, _)| p)
}

fn peak_fraction(xs: &[u32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0usize) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / xs.len() as f64
}

/// Generate a position profile: `n_tumor_mut` tumor and `n_normal_mut`
/// normal mutation events under the given model. Deterministic in the seed.
#[must_use]
pub fn generate_profile(
    gene: &str,
    length: u32,
    model: PositionModel,
    n_tumor_mut: usize,
    n_normal_mut: usize,
    seed: u64,
) -> PositionProfile {
    assert!(length >= 1, "gene must have at least one position");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let uniform = |rng: &mut SmallRng| rng.random_range(1..=length);
    let tumor_positions: Vec<u32> = (0..n_tumor_mut)
        .map(|_| match model {
            PositionModel::Hotspot {
                hotspot,
                concentration,
            } => {
                if rng.random::<f64>() < concentration {
                    hotspot
                } else {
                    uniform(&mut rng)
                }
            }
            PositionModel::Uniform => uniform(&mut rng),
        })
        .collect();
    let normal_positions: Vec<u32> = (0..n_normal_mut).map(|_| uniform(&mut rng)).collect();
    PositionProfile {
        gene: gene.to_string(),
        length,
        tumor_positions,
        normal_positions,
    }
}

/// The paper's Fig 10 pair, at the stated magnitudes: IDH1 (length 414,
/// hotspot R132, 400 mutated tumors of 532, 0 normals of 329) and MUC6
/// (length 2439, uniform, passenger-level mutation counts in both cohorts).
#[must_use]
pub fn lgg_fig10_profiles(seed: u64) -> (PositionProfile, PositionProfile) {
    let idh1 = generate_profile(
        "IDH1",
        414,
        PositionModel::Hotspot {
            hotspot: 132,
            concentration: 0.97,
        },
        400,
        0,
        seed,
    );
    let muc6 = generate_profile("MUC6", 2439, PositionModel::Uniform, 90, 55, seed + 1);
    (idh1, muc6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_gene_concentrates() {
        let p = generate_profile(
            "IDH1",
            414,
            PositionModel::Hotspot {
                hotspot: 132,
                concentration: 0.95,
            },
            400,
            0,
            7,
        );
        assert_eq!(p.tumor_hotspot_position(), Some(132));
        assert!(p.tumor_hotspot_fraction() > 0.85);
        assert!(p.looks_like_driver(0.5));
    }

    #[test]
    fn uniform_gene_scatters() {
        let p = generate_profile("MUC6", 2439, PositionModel::Uniform, 90, 55, 11);
        assert!(p.tumor_hotspot_fraction() < 0.2);
        assert!(!p.looks_like_driver(0.5));
    }

    #[test]
    fn histogram_sums_to_mutation_percentage() {
        let p = generate_profile("X", 100, PositionModel::Uniform, 50, 0, 3);
        let h = p.histogram(&p.tumor_positions, 20, 200);
        let total: f64 = h.iter().sum();
        // 50 events over a cohort of 200 → 25 percentage points.
        assert!((total - 25.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_boundaries() {
        let p = PositionProfile {
            gene: "B".into(),
            length: 10,
            tumor_positions: vec![1, 10, 10],
            normal_positions: vec![],
        };
        let h = p.histogram(&p.tumor_positions, 5, 100);
        assert!((h[0] - 1.0).abs() < 1e-9);
        assert!((h[4] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fig10_profiles_reproduce_paper_contrast() {
        let (idh1, muc6) = lgg_fig10_profiles(42);
        // IDH1: strong tumor hotspot at 132, zero normal mutations.
        assert_eq!(idh1.tumor_hotspot_position(), Some(132));
        assert!(idh1.normal_positions.is_empty());
        assert_eq!(idh1.tumor_positions.len(), 400);
        assert!(idh1.looks_like_driver(0.5));
        // MUC6: no driver signal despite plenty of mutations.
        assert!(!muc6.looks_like_driver(0.5));
        assert!(!muc6.normal_positions.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_profile("A", 500, PositionModel::Uniform, 40, 40, 9);
        let b = generate_profile("A", 500, PositionModel::Uniform, 40, 40, 9);
        assert_eq!(a.tumor_positions, b.tumor_positions);
        assert_eq!(a.normal_positions, b.normal_positions);
    }

    #[test]
    fn empty_profile_is_harmless() {
        let p = generate_profile("E", 100, PositionModel::Uniform, 0, 0, 1);
        assert_eq!(p.tumor_hotspot_fraction(), 0.0);
        assert_eq!(p.tumor_hotspot_position(), None);
        assert!(!p.looks_like_driver(0.1));
    }
}
