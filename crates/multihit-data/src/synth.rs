//! Synthetic TCGA-like cohort generation with planted ground truth.
//!
//! The real study summarizes TCGA MAF files into binary gene×sample
//! matrices. Our stand-in generator plants known multi-hit driver
//! combinations inside tumor samples and layers passenger noise over both
//! tumors and normals, so that
//!
//! * the algorithm's input has the same shape and sparsity it would see on
//!   real data, and
//! * unlike real data, recovery can be *verified* — the planted combinations
//!   are the answer key used across the test suite and the Fig 9 harness.
//!
//! Passenger propensity varies per gene with a long-tailed factor standing
//! in for gene length / CpG content (large genes like TTN and MUC16 are
//! notorious passenger magnets, cf. the paper's MUC6 discussion in §V).

use multihit_core::bitmat::BitMatrix;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic cohort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CohortSpec {
    /// Gene universe size `G`.
    pub n_genes: usize,
    /// Tumor samples `Nt`.
    pub n_tumor: usize,
    /// Normal samples `Nn`.
    pub n_normal: usize,
    /// Number of distinct driver combinations planted.
    pub n_driver_combos: usize,
    /// Genes per driver combination (the `h` of the ground truth).
    pub hits_per_combo: usize,
    /// Probability a tumor sample carries *all* genes of its assigned
    /// driver combination (1.0 = fully penetrant).
    pub driver_penetrance: f64,
    /// Mean per-gene passenger mutation probability in tumor samples.
    pub passenger_rate_tumor: f64,
    /// Mean per-gene passenger mutation probability in normal samples.
    pub passenger_rate_normal: f64,
    /// RNG seed; equal specs generate byte-identical cohorts.
    pub seed: u64,
}

impl Default for CohortSpec {
    fn default() -> Self {
        CohortSpec {
            n_genes: 60,
            n_tumor: 120,
            n_normal: 80,
            n_driver_combos: 3,
            hits_per_combo: 3,
            driver_penetrance: 1.0,
            passenger_rate_tumor: 0.03,
            passenger_rate_normal: 0.01,
            seed: 0xC0FFEE,
        }
    }
}

/// A generated cohort: matrices plus the planted answer key.
#[derive(Clone, Debug)]
pub struct Cohort {
    /// Binary gene×sample tumor matrix.
    pub tumor: BitMatrix,
    /// Binary gene×sample normal matrix.
    pub normal: BitMatrix,
    /// The planted driver combinations (sorted gene ids).
    pub planted: Vec<Vec<u32>>,
    /// `assignment[s]` = index into `planted` for tumor sample `s`.
    pub assignment: Vec<usize>,
    /// Per-gene passenger propensity multiplier (the "gene length" factor).
    pub gene_weight: Vec<f64>,
    /// The spec that produced this cohort.
    pub spec: CohortSpec,
}

impl Cohort {
    /// Gene ids participating in any planted combination.
    #[must_use]
    pub fn driver_genes(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.planted.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Generate a cohort from a spec. Deterministic in the spec.
///
/// # Panics
/// Panics if the spec cannot be satisfied (e.g. more driver genes than `G`).
#[must_use]
pub fn generate(spec: &CohortSpec) -> Cohort {
    let need = spec.n_driver_combos * spec.hits_per_combo;
    assert!(
        need <= spec.n_genes,
        "need {need} distinct driver genes but G = {}",
        spec.n_genes
    );
    assert!(spec.hits_per_combo >= 1);
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    // Long-tailed per-gene passenger propensity: exp(N(0, 0.8)) clipped.
    // (Box–Muller from two uniforms keeps us on the approved crate set.)
    let gene_weight: Vec<f64> = (0..spec.n_genes)
        .map(|_| {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (0.8 * z).exp().clamp(0.05, 20.0)
        })
        .collect();

    // Disjoint driver combinations drawn from a shuffled gene pool.
    let mut pool: Vec<u32> = (0..spec.n_genes as u32).collect();
    pool.shuffle(&mut rng);
    let planted: Vec<Vec<u32>> = (0..spec.n_driver_combos)
        .map(|c| {
            let mut genes: Vec<u32> =
                pool[c * spec.hits_per_combo..(c + 1) * spec.hits_per_combo].to_vec();
            genes.sort_unstable();
            genes
        })
        .collect();

    let mut tumor = BitMatrix::zeros(spec.n_genes, spec.n_tumor);
    let mut normal = BitMatrix::zeros(spec.n_genes, spec.n_normal);

    // Assign each tumor to a driver combination (balanced, then shuffled)
    // and implant its genes with the given penetrance.
    let mut assignment: Vec<usize> = (0..spec.n_tumor)
        .map(|s| s % spec.n_driver_combos)
        .collect();
    assignment.shuffle(&mut rng);
    for (s, &c) in assignment.iter().enumerate() {
        if rng.random::<f64>() < spec.driver_penetrance {
            for &g in &planted[c] {
                tumor.set(g as usize, s, true);
            }
        } else {
            // Partial implantation: drop one gene at random.
            let skip = rng.random_range(0..spec.hits_per_combo);
            for (t, &g) in planted[c].iter().enumerate() {
                if t != skip {
                    tumor.set(g as usize, s, true);
                }
            }
        }
    }

    // Passenger noise over both matrices, weighted per gene.
    for (g, &weight) in gene_weight.iter().enumerate() {
        let pt = (spec.passenger_rate_tumor * weight).min(0.95);
        let pn = (spec.passenger_rate_normal * weight).min(0.95);
        for s in 0..spec.n_tumor {
            if rng.random::<f64>() < pt {
                tumor.set(g, s, true);
            }
        }
        for s in 0..spec.n_normal {
            if rng.random::<f64>() < pn {
                normal.set(g, s, true);
            }
        }
    }

    Cohort {
        tumor,
        normal,
        planted,
        assignment,
        gene_weight,
        spec: *spec,
    }
}

/// Synthetic gene symbols: planted drivers get recognizable names drawn from
/// the paper's examples, everything else is `Gnnnnn`.
#[must_use]
pub fn gene_symbols(cohort: &Cohort) -> Vec<String> {
    const DRIVER_NAMES: [&str; 8] = [
        "IDH1", "TP53", "PIK3CA", "KRAS", "BRAF", "EGFR", "PTEN", "RB1",
    ];
    let drivers = cohort.driver_genes();
    let mut names: Vec<String> = (0..cohort.spec.n_genes)
        .map(|g| format!("G{g:05}"))
        .collect();
    for (t, &g) in drivers.iter().enumerate() {
        if t < DRIVER_NAMES.len() {
            names[g as usize] = DRIVER_NAMES[t].to_string();
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CohortSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.tumor, b.tumor);
        assert_eq!(a.normal, b.normal);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CohortSpec::default());
        let b = generate(&CohortSpec {
            seed: 999,
            ..CohortSpec::default()
        });
        assert_ne!(a.tumor, b.tumor);
    }

    #[test]
    fn planted_combos_are_disjoint_and_sorted() {
        let c = generate(&CohortSpec {
            n_driver_combos: 5,
            ..CohortSpec::default()
        });
        let mut all: Vec<u32> = c.planted.iter().flatten().copied().collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "driver combos share a gene");
        for p in &c.planted {
            assert!(p.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(p.len(), c.spec.hits_per_combo);
        }
    }

    #[test]
    fn full_penetrance_plants_every_tumor() {
        let spec = CohortSpec {
            driver_penetrance: 1.0,
            ..CohortSpec::default()
        };
        let c = generate(&spec);
        for (s, &a) in c.assignment.iter().enumerate() {
            for &g in &c.planted[a] {
                assert!(c.tumor.get(g as usize, s), "sample {s} missing gene {g}");
            }
        }
    }

    #[test]
    fn normals_are_sparser_than_tumors() {
        let c = generate(&CohortSpec {
            n_genes: 100,
            n_tumor: 200,
            n_normal: 200,
            ..CohortSpec::default()
        });
        let t_density: u32 = (0..100).map(|g| c.tumor.row_popcount(g)).sum();
        let n_density: u32 = (0..100).map(|g| c.normal.row_popcount(g)).sum();
        // Same sample counts: tumors carry drivers + heavier passengers.
        assert!(t_density > n_density);
    }

    #[test]
    fn gene_weights_are_long_tailed() {
        let c = generate(&CohortSpec {
            n_genes: 2000,
            ..CohortSpec::default()
        });
        let max = c.gene_weight.iter().cloned().fold(0.0, f64::max);
        let mean = c.gene_weight.iter().sum::<f64>() / 2000.0;
        assert!(max > 3.0 * mean, "max {max} vs mean {mean}");
        assert!(c.gene_weight.iter().all(|&w| (0.05..=20.0).contains(&w)));
    }

    #[test]
    fn assignment_is_balanced() {
        let spec = CohortSpec {
            n_tumor: 120,
            n_driver_combos: 3,
            ..CohortSpec::default()
        };
        let c = generate(&spec);
        let mut counts = [0usize; 3];
        for &a in &c.assignment {
            counts[a] += 1;
        }
        assert_eq!(counts, [40, 40, 40]);
    }

    #[test]
    #[should_panic(expected = "distinct driver genes")]
    fn overfull_spec_panics() {
        let _ = generate(&CohortSpec {
            n_genes: 5,
            n_driver_combos: 3,
            hits_per_combo: 3,
            ..CohortSpec::default()
        });
    }

    #[test]
    fn driver_symbols_are_applied() {
        let c = generate(&CohortSpec::default());
        let names = gene_symbols(&c);
        assert_eq!(names.len(), c.spec.n_genes);
        let drivers = c.driver_genes();
        assert_eq!(names[drivers[0] as usize], "IDH1");
        // Non-driver genes keep synthetic ids.
        let non_driver = (0..c.spec.n_genes as u32)
            .find(|g| !drivers.contains(g))
            .unwrap();
        assert!(names[non_driver as usize].starts_with('G'));
    }
}
