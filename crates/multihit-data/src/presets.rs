//! Cohort presets mirroring the paper's datasets.
//!
//! The paper evaluates on TCGA cohorts (Mutect2 calls, summarized to binary
//! gene×sample matrices). TCGA data cannot ship with this reproduction, so
//! each preset names a **synthetic stand-in with the same dimensions**:
//! where the paper states exact sizes we use them (BRCA: 911 tumor samples,
//! `G = 19411`; LGG: 532 tumor / 329 normal samples, Fig 10), otherwise the
//! sizes are plausible TCGA-scale values, recorded here so experiments are
//! reproducible. The 11 four-plus-hit cancer types follow the paper's
//! statement that 11 of 17 studied types need ≥ 4 hits (its ref. 3).

use crate::synth::CohortSpec;

/// A named cancer-type preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancerType {
    /// Adenoid cystic carcinoma — the paper's smallest dataset (Fig 6).
    Acc,
    /// Bladder urothelial carcinoma.
    Blca,
    /// Breast invasive carcinoma — the paper's largest dataset (911 tumors,
    /// G = 19411), used for the scaling studies even though it is estimated
    /// to need only 2–3 hits.
    Brca,
    /// Cervical squamous cell carcinoma.
    Cesc,
    /// Esophageal carcinoma — the paper's 2x2 worst case (36% efficiency).
    Esca,
    /// Glioblastoma multiforme.
    Gbm,
    /// Head and neck squamous cell carcinoma.
    Hnsc,
    /// Kidney renal clear cell carcinoma.
    Kirc,
    /// Brain lower grade glioma — the paper's Fig 10 case study (IDH1/MUC6).
    Lgg,
    /// Liver hepatocellular carcinoma.
    Lihc,
    /// Lung adenocarcinoma.
    Luad,
    /// Lung squamous cell carcinoma.
    Lusc,
    /// Stomach adenocarcinoma.
    Stad,
}

impl CancerType {
    /// The 11 cancer types the paper runs 4-hit discovery on (estimated to
    /// require four or more hits).
    pub const FOUR_HIT_STUDY: [CancerType; 11] = [
        CancerType::Acc,
        CancerType::Blca,
        CancerType::Cesc,
        CancerType::Esca,
        CancerType::Gbm,
        CancerType::Hnsc,
        CancerType::Kirc,
        CancerType::Lihc,
        CancerType::Luad,
        CancerType::Lusc,
        CancerType::Stad,
    ];

    /// TCGA study abbreviation.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            CancerType::Acc => "ACC",
            CancerType::Blca => "BLCA",
            CancerType::Brca => "BRCA",
            CancerType::Cesc => "CESC",
            CancerType::Esca => "ESCA",
            CancerType::Gbm => "GBM",
            CancerType::Hnsc => "HNSC",
            CancerType::Kirc => "KIRC",
            CancerType::Lgg => "LGG",
            CancerType::Lihc => "LIHC",
            CancerType::Luad => "LUAD",
            CancerType::Lusc => "LUSC",
            CancerType::Stad => "STAD",
        }
    }

    /// Paper-scale cohort dimensions `(n_tumor, n_normal, n_genes)`.
    ///
    /// BRCA and LGG dimensions are the paper's; the rest are TCGA-scale
    /// synthetic stand-ins (documented in DESIGN.md).
    #[must_use]
    pub fn dimensions(self) -> (usize, usize, usize) {
        match self {
            CancerType::Acc => (77, 329, 8354),
            CancerType::Blca => (406, 329, 17203),
            CancerType::Brca => (911, 329, 19411),
            CancerType::Cesc => (287, 329, 16309),
            CancerType::Esca => (182, 329, 14018),
            CancerType::Gbm => (388, 329, 15667),
            CancerType::Hnsc => (505, 329, 17015),
            CancerType::Kirc => (368, 329, 13204),
            CancerType::Lgg => (532, 329, 14704),
            CancerType::Lihc => (362, 329, 14871),
            CancerType::Luad => (561, 329, 18012),
            CancerType::Lusc => (485, 329, 17542),
            CancerType::Stad => (437, 329, 17876),
        }
    }

    /// Estimated hits required for carcinogenesis per the paper's ref. 3.
    #[must_use]
    pub fn estimated_hits(self) -> u32 {
        match self {
            CancerType::Brca => 3, // estimated two–three hits
            CancerType::Lgg => 3,
            _ => 4,
        }
    }

    /// A paper-scale [`CohortSpec`] for this cancer type (only feasible to
    /// *generate*; discovery at this scale goes through the modeled cluster
    /// path).
    #[must_use]
    pub fn spec(self, seed: u64) -> CohortSpec {
        let (n_tumor, n_normal, n_genes) = self.dimensions();
        CohortSpec {
            n_genes,
            n_tumor,
            n_normal,
            n_driver_combos: (n_tumor / 65).max(3),
            hits_per_combo: self.estimated_hits() as usize,
            driver_penetrance: 0.95,
            passenger_rate_tumor: 0.02,
            passenger_rate_normal: 0.008,
            seed,
        }
    }

    /// A scaled-down spec with the same tumor/normal *ratio* and planted
    /// structure, sized for end-to-end functional runs (`g` genes).
    ///
    /// Noise levels (imperfect penetrance, passenger mutations in normals)
    /// are set so held-out classification lands in the paper's Fig 9
    /// regime — high but imperfect sensitivity/specificity — rather than
    /// saturating at 100%.
    #[must_use]
    pub fn mini_spec(self, g: usize, seed: u64) -> CohortSpec {
        let (n_tumor, n_normal, _) = self.dimensions();
        let scale = |n: usize| (n / 4).clamp(24, 240);
        CohortSpec {
            n_genes: g,
            n_tumor: scale(n_tumor),
            n_normal: scale(n_normal),
            n_driver_combos: 4,
            hits_per_combo: self.estimated_hits() as usize,
            driver_penetrance: 0.82,
            passenger_rate_tumor: 0.05,
            passenger_rate_normal: 0.025,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brca_matches_paper_dimensions() {
        let (nt, _nn, g) = CancerType::Brca.dimensions();
        assert_eq!(nt, 911);
        assert_eq!(g, 19411);
    }

    #[test]
    fn lgg_matches_fig10_dimensions() {
        let (nt, nn, _) = CancerType::Lgg.dimensions();
        assert_eq!((nt, nn), (532, 329));
    }

    #[test]
    fn acc_is_the_smallest_study_cohort() {
        let acc = CancerType::Acc.dimensions().0;
        for c in CancerType::FOUR_HIT_STUDY {
            assert!(acc <= c.dimensions().0, "{} smaller than ACC", c.code());
        }
    }

    #[test]
    fn study_list_has_11_types_needing_four_hits() {
        assert_eq!(CancerType::FOUR_HIT_STUDY.len(), 11);
        for c in CancerType::FOUR_HIT_STUDY {
            assert_eq!(c.estimated_hits(), 4, "{}", c.code());
        }
        // BRCA is *not* in the study set (2–3 hits) but is the scaling cohort.
        assert!(!CancerType::FOUR_HIT_STUDY.contains(&CancerType::Brca));
    }

    #[test]
    fn codes_are_unique() {
        let all = [
            CancerType::Acc,
            CancerType::Blca,
            CancerType::Brca,
            CancerType::Cesc,
            CancerType::Esca,
            CancerType::Gbm,
            CancerType::Hnsc,
            CancerType::Kirc,
            CancerType::Lgg,
            CancerType::Lihc,
            CancerType::Luad,
            CancerType::Lusc,
            CancerType::Stad,
        ];
        let set: std::collections::HashSet<_> = all.iter().map(|c| c.code()).collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn mini_spec_is_tractable() {
        let s = CancerType::Esca.mini_spec(40, 1);
        assert!(s.n_genes <= 64 && s.n_tumor <= 240 && s.n_normal <= 240);
        assert_eq!(s.hits_per_combo, 4);
    }

    #[test]
    fn paper_scale_generation_is_feasible() {
        // Generating (not searching) at the paper's full BRCA dimensions
        // must work: 19411 genes × (911 + 329) samples, ~2.8 MB packed.
        let cohort = crate::synth::generate(&CancerType::Brca.spec(1));
        assert_eq!(cohort.tumor.n_genes(), 19411);
        assert_eq!(cohort.tumor.n_samples(), 911);
        assert_eq!(cohort.normal.n_samples(), 329);
        let packed = cohort.tumor.packed_bytes() + cohort.normal.packed_bytes();
        assert!(packed < 4 << 20, "packed {packed} bytes");
        // The paper's 32× compression claim at this scale, vs int matrices
        // (29.5× here — word-boundary padding of 911→960 and 329→384 bits).
        let int_bytes = 19411usize * (911 + 329) * 4;
        assert!(int_bytes / packed >= 29);
        assert!(cohort.tumor.tail_is_clean());
    }
}
