//! From combinations to therapy targets — the abstract's payoff: "the
//! multi-hit combinations identified here could ... provide a rational
//! basis for targeted combination therapy."
//!
//! Under the multi-hit model a tumor needs *all* genes of its combination
//! functional(ly mutated); disrupting **one** gene per combination breaks
//! it. A therapy panel for a cohort is therefore a *hitting set* of the
//! discovered combinations — and a small panel (few drug targets) is a
//! minimum hitting set, NP-hard like the set cover it mirrors, handled with
//! the same greedy approximation the discovery algorithm uses.

use std::collections::HashMap;

/// A therapy panel: gene targets hitting every combination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TherapyPanel {
    /// Selected target genes, in greedy order.
    pub targets: Vec<u32>,
    /// `coverage[i]` = number of combinations hit after selecting target
    /// `i` (cumulative).
    pub coverage: Vec<usize>,
}

impl TherapyPanel {
    /// Does the panel hit (intersect) every given combination?
    #[must_use]
    pub fn hits_all(&self, combinations: &[Vec<u32>]) -> bool {
        combinations
            .iter()
            .all(|c| c.iter().any(|g| self.targets.contains(g)))
    }
}

/// Greedy minimum hitting set: repeatedly pick the gene present in the most
/// not-yet-hit combinations (ties → smallest gene id). `ln(n)`-approximate,
/// like the discovery greedy.
#[must_use]
pub fn greedy_panel(combinations: &[Vec<u32>]) -> TherapyPanel {
    let mut alive: Vec<bool> = vec![true; combinations.len()];
    let mut remaining = combinations.len();
    let mut targets = Vec::new();
    let mut coverage = Vec::new();
    while remaining > 0 {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for (c, &live) in combinations.iter().zip(&alive) {
            if live {
                for &g in c {
                    *counts.entry(g).or_insert(0) += 1;
                }
            }
        }
        let Some((&best, _)) = counts
            .iter()
            .max_by(|(ga, ca), (gb, cb)| ca.cmp(cb).then(gb.cmp(ga)))
        else {
            break; // only empty combinations remain
        };
        for (idx, c) in combinations.iter().enumerate() {
            if alive[idx] && c.contains(&best) {
                alive[idx] = false;
                remaining -= 1;
            }
        }
        targets.push(best);
        coverage.push(combinations.len() - remaining);
    }
    TherapyPanel { targets, coverage }
}

/// Rank single genes by how many combinations they participate in — the
/// "most central driver" view a wet-lab would triage by.
#[must_use]
pub fn gene_centrality(combinations: &[Vec<u32>]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for c in combinations {
        for &g in c {
            *counts.entry(g).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(u32, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn combos(cs: &[&[u32]]) -> Vec<Vec<u32>> {
        cs.iter().map(|c| c.to_vec()).collect()
    }

    #[test]
    fn panel_hits_every_combination() {
        let cs = combos(&[&[0, 1, 2], &[1, 3, 4], &[5, 6, 7], &[2, 6, 8]]);
        let p = greedy_panel(&cs);
        assert!(p.hits_all(&cs));
        assert!(p.targets.len() <= cs.len());
        // Cumulative coverage is strictly increasing to the total.
        assert!(p.coverage.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*p.coverage.last().unwrap(), 4);
    }

    #[test]
    fn shared_gene_gives_singleton_panel() {
        let cs = combos(&[&[0, 1, 9], &[2, 3, 9], &[9, 10, 11]]);
        let p = greedy_panel(&cs);
        assert_eq!(p.targets, vec![9]);
    }

    #[test]
    fn greedy_picks_highest_frequency_first() {
        // Gene 5 hits 3 combos, nothing else more.
        let cs = combos(&[&[5, 0], &[5, 1], &[5, 2], &[3, 4]]);
        let p = greedy_panel(&cs);
        assert_eq!(p.targets[0], 5);
        assert_eq!(p.targets.len(), 2);
    }

    #[test]
    fn ties_break_to_smaller_gene_id() {
        let cs = combos(&[&[1, 2], &[1, 2]]);
        assert_eq!(greedy_panel(&cs).targets, vec![1]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(greedy_panel(&[]).targets, Vec::<u32>::new());
        // An empty combination can never be hit; don't loop forever.
        let p = greedy_panel(&combos(&[&[], &[3]]));
        assert_eq!(p.targets, vec![3]);
    }

    #[test]
    fn centrality_ranks_participation() {
        let cs = combos(&[&[0, 1], &[0, 2], &[0, 3], &[2, 3]]);
        let rank = gene_centrality(&cs);
        assert_eq!(rank[0], (0, 3));
        assert_eq!(rank[1], (2, 2));
        assert_eq!(rank[2], (3, 2));
    }

    #[test]
    fn panel_from_discovery_output() {
        // End-to-end: discover on a planted cohort, derive the panel; the
        // panel must hit every discovered combination and stay small.
        use crate::synth::{generate, CohortSpec};
        use multihit_core::greedy::{discover, GreedyConfig};
        let cohort = generate(&CohortSpec::default());
        let run = discover::<3>(&cohort.tumor, &cohort.normal, &GreedyConfig::default());
        let cs: Vec<Vec<u32>> = run.combinations.iter().map(|c| c.to_vec()).collect();
        let p = greedy_panel(&cs);
        assert!(p.hits_all(&cs));
        assert!(p.targets.len() <= cs.len());
        assert!(!p.targets.is_empty());
    }
}
