//! Mutation-level (rather than gene-level) analysis — the paper's §V
//! conclusion: "To identify combinations of true oncogenic mutations will
//! require searching for specific combinations of mutations within genes
//! instead of combinations of genes with mutations."
//!
//! This module builds the substrate for that future-work direction:
//!
//! * expand a gene×sample cohort into a **mutation-site×sample** matrix by
//!   assigning every mutation event a protein position — hotspot-
//!   concentrated for planted driver genes (the IDH1-R132 regime), uniform
//!   for passengers (the MUC6 regime);
//! * the paper's mitigation (3): **filter to the most probable oncogenic
//!   sites** by recurrence, shrinking the row count back toward
//!   tractability;
//! * run the unchanged core algorithm over the site matrix — it only sees a
//!   bigger binary matrix — so a discovery at site level distinguishes
//!   `IDH1:132` from "IDH1 anywhere".

use crate::positions::PositionModel;
use crate::synth::Cohort;
use multihit_core::bitmat::BitMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A specific protein-altering mutation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MutationSite {
    /// Gene id in the originating cohort.
    pub gene: u32,
    /// 1-based protein position.
    pub position: u32,
}

/// A mutation-level view of a cohort.
#[derive(Clone, Debug)]
pub struct MutationCohort {
    /// Site×sample tumor matrix (rows index into `sites`).
    pub tumor: BitMatrix,
    /// Site×sample normal matrix.
    pub normal: BitMatrix,
    /// Row → site mapping, sorted.
    pub sites: Vec<MutationSite>,
    /// The hotspot site of every planted driver gene (the ground truth a
    /// site-level discovery should pinpoint).
    pub driver_sites: Vec<MutationSite>,
}

impl MutationCohort {
    /// Row index of a site, if present.
    #[must_use]
    pub fn row_of(&self, site: MutationSite) -> Option<usize> {
        self.sites.binary_search(&site).ok()
    }

    /// Expansion factor over the gene universe (paper: mutation matrices
    /// are ~20× larger than gene matrices).
    #[must_use]
    pub fn expansion_factor(&self, n_genes: usize) -> f64 {
        self.sites.len() as f64 / n_genes as f64
    }
}

/// Parameters of the gene → site expansion.
#[derive(Clone, Copy, Debug)]
pub struct ExpansionSpec {
    /// Protein length assigned to every gene (uniform for simplicity; the
    /// paper's size effect is carried by the passenger gene weights).
    pub gene_length: u32,
    /// Fraction of a driver gene's tumor mutations landing on its hotspot.
    pub hotspot_concentration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExpansionSpec {
    fn default() -> Self {
        ExpansionSpec {
            gene_length: 400,
            hotspot_concentration: 0.9,
            seed: 0xB10,
        }
    }
}

/// Expand a gene-level cohort into mutation sites.
///
/// Every set bit `(gene, sample)` becomes one site event `(gene, pos,
/// sample)`: driver genes draw `pos` from their hotspot model, passengers
/// uniformly. Site rows are deduplicated and sorted.
#[must_use]
pub fn expand(cohort: &Cohort, spec: &ExpansionSpec) -> MutationCohort {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let drivers: Vec<u32> = cohort.driver_genes();
    // Assign each driver gene a hotspot position.
    let hotspots: HashMap<u32, u32> = drivers
        .iter()
        .map(|&g| (g, rng.random_range(1..=spec.gene_length)))
        .collect();
    let model_for = |g: u32| -> PositionModel {
        match hotspots.get(&g) {
            Some(&h) => PositionModel::Hotspot {
                hotspot: h,
                concentration: spec.hotspot_concentration,
            },
            None => PositionModel::Uniform,
        }
    };

    // First pass: draw a position for every event; collect site set.
    let draw = |g: u32, is_tumor: bool, rng: &mut SmallRng| -> u32 {
        match (model_for(g), is_tumor) {
            (
                PositionModel::Hotspot {
                    hotspot,
                    concentration,
                },
                true,
            ) => {
                if rng.random::<f64>() < concentration {
                    hotspot
                } else {
                    rng.random_range(1..=spec.gene_length)
                }
            }
            _ => rng.random_range(1..=spec.gene_length),
        }
    };
    let mut tumor_events: Vec<(MutationSite, usize)> = Vec::new();
    let mut normal_events: Vec<(MutationSite, usize)> = Vec::new();
    for g in 0..cohort.spec.n_genes {
        for s in 0..cohort.tumor.n_samples() {
            if cohort.tumor.get(g, s) {
                let pos = draw(g as u32, true, &mut rng);
                tumor_events.push((
                    MutationSite {
                        gene: g as u32,
                        position: pos,
                    },
                    s,
                ));
            }
        }
        for s in 0..cohort.normal.n_samples() {
            if cohort.normal.get(g, s) {
                let pos = draw(g as u32, false, &mut rng);
                normal_events.push((
                    MutationSite {
                        gene: g as u32,
                        position: pos,
                    },
                    s,
                ));
            }
        }
    }
    let mut sites: Vec<MutationSite> = tumor_events
        .iter()
        .chain(normal_events.iter())
        .map(|&(site, _)| site)
        .collect();
    sites.sort_unstable();
    sites.dedup();

    let index: HashMap<MutationSite, usize> =
        sites.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut tumor = BitMatrix::zeros(sites.len(), cohort.tumor.n_samples());
    for &(site, s) in &tumor_events {
        tumor.set(index[&site], s, true);
    }
    let mut normal = BitMatrix::zeros(sites.len(), cohort.normal.n_samples());
    for &(site, s) in &normal_events {
        normal.set(index[&site], s, true);
    }

    let driver_sites = drivers
        .iter()
        .map(|&g| MutationSite {
            gene: g,
            position: hotspots[&g],
        })
        .collect();
    MutationCohort {
        tumor,
        normal,
        sites,
        driver_sites,
    }
}

/// §V mitigation (3): keep only sites mutated in at least `min_tumors`
/// tumor samples ("the most probable oncogenic mutations"). Returns the
/// filtered cohort and the kept-row fraction.
#[must_use]
pub fn filter_recurrent(mc: &MutationCohort, min_tumors: u32) -> (MutationCohort, f64) {
    let keep: Vec<usize> = (0..mc.sites.len())
        .filter(|&r| mc.tumor.row_popcount(r) >= min_tumors)
        .collect();
    let mut tumor = BitMatrix::zeros(keep.len(), mc.tumor.n_samples());
    let mut normal = BitMatrix::zeros(keep.len(), mc.normal.n_samples());
    for (new_r, &old_r) in keep.iter().enumerate() {
        for s in 0..mc.tumor.n_samples() {
            if mc.tumor.get(old_r, s) {
                tumor.set(new_r, s, true);
            }
        }
        for s in 0..mc.normal.n_samples() {
            if mc.normal.get(old_r, s) {
                normal.set(new_r, s, true);
            }
        }
    }
    let sites: Vec<MutationSite> = keep.iter().map(|&r| mc.sites[r]).collect();
    let driver_sites = mc
        .driver_sites
        .iter()
        .copied()
        .filter(|d| sites.binary_search(d).is_ok())
        .collect();
    let frac = keep.len() as f64 / mc.sites.len().max(1) as f64;
    (
        MutationCohort {
            tumor,
            normal,
            sites,
            driver_sites,
        },
        frac,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, CohortSpec};
    use multihit_core::greedy::{discover, GreedyConfig};

    fn base_cohort() -> Cohort {
        generate(&CohortSpec {
            n_genes: 30,
            n_tumor: 120,
            n_normal: 80,
            n_driver_combos: 2,
            hits_per_combo: 2,
            driver_penetrance: 1.0,
            passenger_rate_tumor: 0.04,
            passenger_rate_normal: 0.02,
            seed: 77,
        })
    }

    #[test]
    fn expansion_is_larger_than_gene_universe() {
        let c = base_cohort();
        let mc = expand(&c, &ExpansionSpec::default());
        assert!(mc.sites.len() > 30, "only {} sites", mc.sites.len());
        assert!(mc.expansion_factor(30) > 1.0);
        assert_eq!(mc.tumor.n_samples(), 120);
        assert_eq!(mc.normal.n_samples(), 80);
        // Sorted, deduplicated site registry.
        assert!(mc.sites.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn event_counts_are_preserved() {
        // Total set bits at site level equal gene-level events (each gene
        // event maps to exactly one site; duplicates within a (site,sample)
        // can only merge, never split).
        let c = base_cohort();
        let mc = expand(&c, &ExpansionSpec::default());
        let gene_events: u32 = (0..30).map(|g| c.tumor.row_popcount(g)).sum();
        let site_events: u32 = (0..mc.sites.len()).map(|r| mc.tumor.row_popcount(r)).sum();
        assert!(site_events <= gene_events);
        assert!(site_events >= gene_events * 9 / 10);
    }

    #[test]
    fn driver_hotspot_sites_are_recurrent() {
        let c = base_cohort();
        let mc = expand(&c, &ExpansionSpec::default());
        for d in &mc.driver_sites {
            let row = mc.row_of(*d).expect("driver site present");
            // Fully penetrant drivers with 0.9 hotspot concentration: the
            // hotspot row covers most of its combo's tumor share.
            assert!(
                mc.tumor.row_popcount(row) > 30,
                "driver site {d:?} barely recurrent"
            );
        }
    }

    #[test]
    fn recurrence_filter_keeps_drivers_drops_passengers() {
        let c = base_cohort();
        let mc = expand(&c, &ExpansionSpec::default());
        let (filtered, frac) = filter_recurrent(&mc, 5);
        assert!(frac < 0.5, "kept {frac}");
        assert_eq!(filtered.driver_sites.len(), mc.driver_sites.len());
        for d in &filtered.driver_sites {
            assert!(filtered.row_of(*d).is_some());
        }
    }

    #[test]
    fn site_level_discovery_pinpoints_hotspots() {
        // The headline §V behavior: discovery over the filtered site matrix
        // returns the *specific hotspot sites* of the planted drivers.
        let c = base_cohort();
        let mc = expand(&c, &ExpansionSpec::default());
        let (filtered, _) = filter_recurrent(&mc, 5);
        let result = discover::<2>(
            &filtered.tumor,
            &filtered.normal,
            &GreedyConfig {
                max_combinations: 4,
                ..GreedyConfig::default()
            },
        );
        let discovered_sites: Vec<MutationSite> = result
            .combinations
            .iter()
            .flatten()
            .map(|&r| filtered.sites[r as usize])
            .collect();
        let hits = filtered
            .driver_sites
            .iter()
            .filter(|d| discovered_sites.contains(d))
            .count();
        assert!(
            hits >= filtered.driver_sites.len() - 1,
            "only {hits}/{} hotspot sites discovered: {discovered_sites:?}",
            filtered.driver_sites.len()
        );
    }

    #[test]
    fn filter_is_monotone_in_threshold() {
        let c = base_cohort();
        let mc = expand(&c, &ExpansionSpec::default());
        let (_, f1) = filter_recurrent(&mc, 2);
        let (_, f2) = filter_recurrent(&mc, 10);
        assert!(f2 <= f1);
    }

    #[test]
    fn expansion_is_deterministic() {
        let c = base_cohort();
        let a = expand(&c, &ExpansionSpec::default());
        let b = expand(&c, &ExpansionSpec::default());
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.tumor, b.tumor);
    }
}
