//! # multihit-data
//!
//! The data substrate for the multihit reproduction: synthetic TCGA-like
//! cohorts with planted ground truth ([`synth`]), within-gene mutation
//! position modeling ([`positions`]), MAF serialization and summarization
//! ([`maf`]), seeded train/test splitting ([`split`]), cancer-type presets
//! at the paper's dimensions ([`presets`]), and the combination classifier
//! with Wilson confidence intervals ([`classify`]), plus the mutation-level
//! (site×sample) expansion of §V ([`mutations`]).
//!
//! TCGA data cannot ship with a reproduction; the generator here produces
//! cohorts of the same shape whose correct answers are *known*, which the
//! paper's own evaluation cannot offer (see DESIGN.md, substitution table).

pub mod classify;
pub mod maf;
pub mod mutations;
pub mod positions;
pub mod presets;
pub mod results;
pub mod split;
pub mod synth;
pub mod therapy;

pub use classify::{ComboClassifier, Performance, Proportion};
pub use presets::CancerType;
pub use synth::{generate, Cohort, CohortSpec};
