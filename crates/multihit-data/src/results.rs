//! Discovery-result serialization — the paper ships its identified
//! combinations as supporting-information tables; this is the equivalent
//! machine-readable format: a small TSV with a header of run metadata and
//! one row per combination, writable and parsable without leaving the
//! approved dependency set.

use multihit_core::greedy::GreedyResult;
use std::fmt::Write as _;

/// One serialized combination row.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Selection order (0-based greedy iteration).
    pub iteration: usize,
    /// Gene symbols of the combination.
    pub genes: Vec<String>,
    /// F value at selection time.
    pub f: f64,
    /// Tumor samples newly covered.
    pub tp: u32,
    /// True negatives at selection time.
    pub tn: u32,
}

/// A whole run's results.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultsFile {
    /// Cancer-type / cohort label.
    pub cohort: String,
    /// Hits per combination.
    pub hits: usize,
    /// Rows in selection order.
    pub rows: Vec<ResultRow>,
}

impl ResultsFile {
    /// Build from a greedy run plus gene symbols.
    #[must_use]
    pub fn from_run<const H: usize>(cohort: &str, run: &GreedyResult<H>, names: &[String]) -> Self {
        let rows = run
            .iterations
            .iter()
            .enumerate()
            .map(|(iteration, rec)| ResultRow {
                iteration,
                genes: rec
                    .best
                    .genes
                    .iter()
                    .map(|&g| names[g as usize].clone())
                    .collect(),
                f: rec.f,
                tp: rec.best.tp,
                tn: rec.best.tn,
            })
            .collect();
        ResultsFile {
            cohort: cohort.to_string(),
            hits: H,
            rows,
        }
    }

    /// Serialize to TSV text.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "#cohort\t{}", self.cohort);
        let _ = writeln!(out, "#hits\t{}", self.hits);
        let _ = writeln!(out, "iteration\tgenes\tF\tTP\tTN");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}\t{}\t{:.6}\t{}\t{}",
                r.iteration,
                r.genes.join(","),
                r.f,
                r.tp,
                r.tn
            );
        }
        out
    }

    /// Parse TSV text produced by [`Self::to_tsv`].
    ///
    /// # Errors
    /// Returns a message naming the first malformed line.
    pub fn from_tsv(text: &str) -> Result<Self, String> {
        let mut cohort = String::new();
        let mut hits = 0usize;
        let mut rows = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let err = |what: &str| format!("line {}: {what}", idx + 1);
            if let Some(rest) = line.strip_prefix("#cohort\t") {
                cohort = rest.to_string();
            } else if let Some(rest) = line.strip_prefix("#hits\t") {
                hits = rest.parse().map_err(|_| err("bad hits"))?;
            } else if line.starts_with("iteration\t") || line.is_empty() {
                continue;
            } else {
                let f: Vec<&str> = line.split('\t').collect();
                if f.len() != 5 {
                    return Err(err("expected 5 fields"));
                }
                rows.push(ResultRow {
                    iteration: f[0].parse().map_err(|_| err("bad iteration"))?,
                    genes: f[1].split(',').map(ToString::to_string).collect(),
                    f: f[2].parse().map_err(|_| err("bad F"))?,
                    tp: f[3].parse().map_err(|_| err("bad TP"))?,
                    tn: f[4].parse().map_err(|_| err("bad TN"))?,
                });
            }
        }
        if cohort.is_empty() {
            return Err("missing #cohort header".to_string());
        }
        Ok(ResultsFile { cohort, hits, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{gene_symbols, generate, CohortSpec};
    use multihit_core::greedy::{discover, GreedyConfig};

    #[test]
    fn tsv_roundtrip() {
        let cohort = generate(&CohortSpec::default());
        let names = gene_symbols(&cohort);
        let run = discover::<3>(
            &cohort.tumor,
            &cohort.normal,
            &GreedyConfig {
                max_combinations: 3,
                ..GreedyConfig::default()
            },
        );
        let rf = ResultsFile::from_run("BRCA-synth", &run, &names);
        let text = rf.to_tsv();
        let back = ResultsFile::from_tsv(&text).unwrap();
        assert_eq!(back.cohort, rf.cohort);
        assert_eq!(back.hits, 3);
        assert_eq!(back.rows.len(), rf.rows.len());
        for (a, b) in rf.rows.iter().zip(&back.rows) {
            assert_eq!(a.genes, b.genes);
            assert_eq!((a.tp, a.tn), (b.tp, b.tn));
            assert!((a.f - b.f).abs() < 1e-6);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ResultsFile::from_tsv("").is_err());
        assert!(ResultsFile::from_tsv("#cohort\tX\n#hits\tnope\n").is_err());
        let bad = "#cohort\tX\n#hits\t2\niteration\tgenes\tF\tTP\tTN\n0\tA,B\n";
        let e = ResultsFile::from_tsv(bad).unwrap_err();
        assert!(e.contains("5 fields"), "{e}");
    }

    #[test]
    fn rows_carry_iteration_order() {
        let cohort = generate(&CohortSpec::default());
        let names = gene_symbols(&cohort);
        let run = discover::<2>(&cohort.tumor, &cohort.normal, &GreedyConfig::default());
        let rf = ResultsFile::from_run("X", &run, &names);
        for (i, r) in rf.rows.iter().enumerate() {
            assert_eq!(r.iteration, i);
        }
    }
}
