//! The per-cancer combination classifier and its accuracy metrics (§IV-F,
//! Fig 9).
//!
//! Given the combinations `c₁ … cₚ` discovered on the training split, a
//! sample is classified **tumor** iff it carries mutations in *all* genes of
//! *any* one combination, else **normal**. Sensitivity is measured on
//! held-out tumor samples, specificity on held-out normals, each with a
//! Wilson-score 95% confidence interval (the error bars of Fig 9).

use multihit_core::bitmat::BitMatrix;
use multihit_core::kernel;

/// A disjunction-of-conjunctions classifier over gene ids.
///
/// ```
/// use multihit_core::bitmat::BitMatrix;
/// use multihit_data::classify::ComboClassifier;
///
/// // Sample 0 carries genes {0,1}; sample 1 carries gene 0 only.
/// let m = BitMatrix::from_rows(2, 2, &[vec![0, 1], vec![0]]);
/// let clf = ComboClassifier::from_fixed(&[[0u32, 1]]);
/// assert!(clf.classify(&m, 0));
/// assert!(!clf.classify(&m, 1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComboClassifier {
    /// Each inner vec is one combination (all genes must be mutated).
    pub combinations: Vec<Vec<u32>>,
}

impl ComboClassifier {
    /// Build from fixed-arity combinations (e.g. greedy `[u32; 4]` output).
    #[must_use]
    pub fn from_fixed<const H: usize>(combos: &[[u32; H]]) -> Self {
        ComboClassifier {
            combinations: combos.iter().map(|c| c.to_vec()).collect(),
        }
    }

    /// Classify one sample column of `m`: true = tumor.
    #[must_use]
    pub fn classify(&self, m: &BitMatrix, sample: usize) -> bool {
        self.combinations
            .iter()
            .any(|c| c.iter().all(|&g| m.get(g as usize, sample)))
    }

    /// Number of tumor-classified samples in a matrix.
    #[must_use]
    pub fn count_positive(&self, m: &BitMatrix) -> usize {
        (0..m.n_samples()).filter(|&s| self.classify(m, s)).count()
    }

    /// Classify **every** sample column of `m` in one batched pass.
    ///
    /// Folds each combination's gene rows with the vectorized AND kernel
    /// ([`multihit_core::kernel`]) and ORs the surviving column masks, so a
    /// batch of B samples costs one row-AND chain per combination instead
    /// of B scalar walks. Bit-identical to calling [`Self::classify`] per
    /// column (both compute "sample carries all genes of some combination");
    /// the serving layer's batched-vs-scalar proptests pin that equality.
    ///
    /// An empty combination is vacuously satisfied (everything tumor), the
    /// same as the scalar path's `.all()` over zero genes.
    ///
    /// # Panics
    /// Panics if any combination references a gene `>= m.n_genes()` — the
    /// scalar path panics on such ids too (row access out of bounds); the
    /// serving registry validates panels against its gene universe at load.
    #[must_use]
    pub fn classify_batch(&self, m: &BitMatrix) -> Vec<bool> {
        for combo in &self.combinations {
            for &g in combo {
                assert!(
                    (g as usize) < m.n_genes(),
                    "combination gene {g} out of range for {}-gene matrix",
                    m.n_genes()
                );
            }
        }
        let words = m.words_per_row();
        let mut tumor_mask = vec![0u64; words];
        let mut acc = vec![0u64; words];
        for combo in &self.combinations {
            if combo.is_empty() {
                tumor_mask = m.full_mask();
                break;
            }
            acc.copy_from_slice(m.row(combo[0] as usize));
            let mut alive = kernel::popcount(&acc);
            for &g in &combo[1..] {
                if alive == 0 {
                    break;
                }
                for (d, r) in acc.iter_mut().zip(m.row(g as usize)) {
                    *d &= r;
                }
                alive = kernel::popcount(&acc);
            }
            if alive > 0 {
                for (t, a) in tumor_mask.iter_mut().zip(&acc) {
                    *t |= a;
                }
            }
        }
        (0..m.n_samples())
            .map(|s| (tumor_mask[s / 64] >> (s % 64)) & 1 == 1)
            .collect()
    }

    /// Evaluate on a held-out split: sensitivity over `test_tumor`,
    /// specificity over `test_normal`.
    #[must_use]
    pub fn evaluate(&self, test_tumor: &BitMatrix, test_normal: &BitMatrix) -> Performance {
        let tp = self.count_positive(test_tumor);
        let fp = self.count_positive(test_normal);
        Performance {
            sensitivity: Proportion::new(tp, test_tumor.n_samples()),
            specificity: Proportion::new(test_normal.n_samples() - fp, test_normal.n_samples()),
        }
    }
}

/// A proportion with its Wilson-score confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Proportion {
    /// Successes.
    pub hits: usize,
    /// Trials.
    pub total: usize,
}

impl Proportion {
    /// Construct; `hits ≤ total` is required.
    #[must_use]
    pub fn new(hits: usize, total: usize) -> Self {
        assert!(hits <= total, "{hits} successes out of {total} trials");
        Proportion { hits, total }
    }

    /// Point estimate (0 when there are no trials).
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Wilson score interval at the given z (1.96 ⇒ 95%).
    #[must_use]
    pub fn wilson_ci(&self, z: f64) -> (f64, f64) {
        if self.total == 0 {
            return (0.0, 1.0);
        }
        let n = self.total as f64;
        let p = self.value();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// The conventional 95% interval.
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        self.wilson_ci(1.959_963_984_540_054)
    }
}

/// Sensitivity/specificity pair for one cancer type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Performance {
    /// P(classified tumor | tumor).
    pub sensitivity: Proportion,
    /// P(classified normal | normal).
    pub specificity: Proportion,
}

/// Average performance across cancer types (the paper reports 83%
/// sensitivity / 90% specificity averaged over 11 types).
///
/// Zero-trial cohorts are **skipped per metric**, matching the paper's
/// Fig 9 semantics: a cohort with no held-out tumor samples contributes no
/// sensitivity observation (and likewise for normals/specificity). An
/// earlier revision let `Proportion::value()`'s `total == 0 → 0.0`
/// convention flow into the mean, silently dragging the cross-cancer
/// average toward zero. With no non-empty cohort at all, the metric is 0.0.
#[must_use]
pub fn average(perfs: &[Performance]) -> (f64, f64) {
    let mean_of = |vals: &mut dyn Iterator<Item = Proportion>| -> f64 {
        let (sum, n) = vals
            .filter(|p| p.total > 0)
            .fold((0.0f64, 0usize), |(s, n), p| (s + p.value(), n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };
    (
        mean_of(&mut perfs.iter().map(|p| p.sensitivity)),
        mean_of(&mut perfs.iter().map(|p| p.specificity)),
    )
}

/// Percentile-bootstrap 95% CI of the *mean* of `values` — how the paper's
/// Fig 9 qualifies its cross-cancer averages ("83% sensitivity, 95% CI
/// 72–90%": variation across the 11 types, not within one cohort).
///
/// Deterministic in the seed. Returns `(lo, hi)`; degenerate inputs yield
/// the point mass.
#[must_use]
pub fn bootstrap_mean_ci95(values: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    if values.len() == 1 || resamples == 0 {
        return (values[0], values[0]);
    }
    // Small xorshift so the data crate needs no extra RNG plumbing here.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = values.len();
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut acc = 0.0;
            for _ in 0..n {
                acc += values[(next() % n as u64) as usize];
            }
            acc / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| means[((means.len() - 1) as f64 * q).round() as usize];
    (pick(0.025), pick(0.975))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[Vec<usize>], n: usize) -> BitMatrix {
        BitMatrix::from_rows(rows.len(), n, rows)
    }

    #[test]
    fn classify_requires_all_genes_of_some_combo() {
        // 3 genes, 3 samples. Combo {0,1}.
        let m = matrix(&[vec![0, 1], vec![0, 2], vec![]], 3);
        let c = ComboClassifier::from_fixed(&[[0u32, 1]]);
        assert!(c.classify(&m, 0)); // has both
        assert!(!c.classify(&m, 1)); // gene 0 only
        assert!(!c.classify(&m, 2)); // gene 1 only
    }

    #[test]
    fn any_combo_suffices() {
        let m = matrix(&[vec![0], vec![0], vec![1], vec![1]], 2);
        let c = ComboClassifier::from_fixed(&[[0u32, 1], [2, 3]]);
        assert!(c.classify(&m, 0));
        assert!(c.classify(&m, 1));
    }

    #[test]
    fn empty_classifier_calls_everything_normal() {
        let m = matrix(&[vec![0]], 1);
        let c = ComboClassifier::default();
        assert!(!c.classify(&m, 0));
        let perf = c.evaluate(&m, &m);
        assert_eq!(perf.sensitivity.value(), 0.0);
        assert_eq!(perf.specificity.value(), 1.0);
    }

    #[test]
    fn evaluate_counts_both_sides() {
        // Tumor matrix: 2 of 3 samples carry the combo. Normal: 1 of 4 does.
        let t = matrix(&[vec![0, 1], vec![0, 1, 2]], 3);
        let n = matrix(&[vec![3], vec![0, 3]], 4);
        let c = ComboClassifier::from_fixed(&[[0u32, 1]]);
        let p = c.evaluate(&t, &n);
        assert_eq!((p.sensitivity.hits, p.sensitivity.total), (2, 3));
        assert_eq!((p.specificity.hits, p.specificity.total), (3, 4));
    }

    #[test]
    fn wilson_ci_brackets_the_point_estimate() {
        let p = Proportion::new(83, 100);
        let (lo, hi) = p.ci95();
        assert!(lo < 0.83 && 0.83 < hi);
        assert!(lo > 0.74 && hi < 0.90, "({lo}, {hi})");
    }

    #[test]
    fn wilson_ci_edge_cases() {
        let zero = Proportion::new(0, 50);
        let (lo, _) = zero.ci95();
        assert_eq!(lo, 0.0);
        let full = Proportion::new(50, 50);
        let (_, hi) = full.ci95();
        assert_eq!(hi, 1.0);
        let (lo, hi) = Proportion::new(0, 0).ci95();
        assert_eq!((lo, hi), (0.0, 1.0));
    }

    #[test]
    fn wilson_narrows_with_sample_size() {
        let small = Proportion::new(9, 10).ci95();
        let large = Proportion::new(900, 1000).ci95();
        assert!(large.1 - large.0 < small.1 - small.0);
    }

    #[test]
    fn average_over_types() {
        let p = |s: usize, n: usize| Performance {
            sensitivity: Proportion::new(s, 10),
            specificity: Proportion::new(n, 10),
        };
        let (sens, spec) = average(&[p(8, 9), p(9, 9), p(7, 10)]);
        assert!((sens - 0.8).abs() < 1e-12);
        assert!((spec - 28.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn average_skips_zero_trial_cohorts() {
        // Regression: a cohort with no held-out tumor samples used to
        // contribute sensitivity 0.0 (via Proportion::value's total==0
        // convention), dragging the mean from 0.8 down to 0.4.
        let good = Performance {
            sensitivity: Proportion::new(8, 10),
            specificity: Proportion::new(9, 10),
        };
        let empty_tumor = Performance {
            sensitivity: Proportion::new(0, 0),
            specificity: Proportion::new(5, 10),
        };
        let (sens, spec) = average(&[good, empty_tumor]);
        assert!((sens - 0.8).abs() < 1e-12, "sens {sens}");
        // Specificity has two real cohorts and still averages both.
        assert!((spec - 0.7).abs() < 1e-12, "spec {spec}");

        // All-empty input: no observations at all → 0.0, not NaN.
        let (s0, p0) = average(&[Performance {
            sensitivity: Proportion::new(0, 0),
            specificity: Proportion::new(0, 0),
        }]);
        assert_eq!((s0, p0), (0.0, 0.0));
        assert_eq!(average(&[]), (0.0, 0.0));
    }

    #[test]
    fn classify_batch_matches_scalar() {
        // 130 samples spans three u64 words.
        let n = 130;
        let rows: Vec<Vec<usize>> = (0..6)
            .map(|g| (0..n).filter(|s| (s * 7 + g * 13) % (g + 2) == 0).collect())
            .collect();
        let m = matrix(&rows, n);
        let c = ComboClassifier {
            combinations: vec![vec![0, 1], vec![2, 3, 4], vec![5]],
        };
        let batched = c.classify_batch(&m);
        assert_eq!(batched.len(), n);
        for (s, &b) in batched.iter().enumerate() {
            assert_eq!(b, c.classify(&m, s), "sample {s}");
        }

        // Empty combination is vacuously true in both paths.
        let vac = ComboClassifier {
            combinations: vec![vec![0, 1], vec![]],
        };
        assert!(vac.classify_batch(&m).iter().all(|&b| b));
        assert!((0..n).all(|s| vac.classify(&m, s)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn classify_batch_rejects_unknown_genes() {
        let m = matrix(&[vec![0]], 1);
        let c = ComboClassifier {
            combinations: vec![vec![0, 99]],
        };
        let _ = c.classify_batch(&m);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let vals = [0.7, 0.8, 0.85, 0.9, 0.95, 0.75, 0.88, 0.92, 0.8, 0.83, 0.9];
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let (lo, hi) = bootstrap_mean_ci95(&vals, 2000, 9);
        assert!(lo < mean && mean < hi, "({lo}, {hi}) vs {mean}");
        assert!(hi - lo < 0.15, "interval too wide: ({lo}, {hi})");
        // Deterministic in the seed.
        assert_eq!(bootstrap_mean_ci95(&vals, 2000, 9), (lo, hi));
        assert_ne!(bootstrap_mean_ci95(&vals, 2000, 10), (lo, hi));
    }

    #[test]
    fn bootstrap_ci_degenerate_inputs() {
        assert_eq!(bootstrap_mean_ci95(&[], 100, 1), (0.0, 0.0));
        assert_eq!(bootstrap_mean_ci95(&[0.5], 100, 1), (0.5, 0.5));
        let constant = [0.9; 8];
        let (lo, hi) = bootstrap_mean_ci95(&constant, 500, 3);
        // Resampled means of a constant sample are that constant (up to
        // float summation ulps).
        assert!(
            (lo - 0.9).abs() < 1e-12 && (hi - 0.9).abs() < 1e-12,
            "({lo}, {hi})"
        );
    }

    #[test]
    #[should_panic(expected = "successes")]
    fn proportion_rejects_overflow() {
        let _ = Proportion::new(5, 3);
    }
}
