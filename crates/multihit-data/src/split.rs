//! Seeded train/test splitting (§III-G: 75% training, 25% test, randomly
//! selected per cohort).
//!
//! A split selects sample *columns*; the resulting sub-matrices are produced
//! with the same column-splice primitive the core algorithm uses for
//! BitSplicing, so no second matrix representation exists.

use multihit_core::bitmat::BitMatrix;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Index sets of one cohort split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Split {
    /// Training sample indices (sorted).
    pub train: Vec<usize>,
    /// Test sample indices (sorted).
    pub test: Vec<usize>,
}

/// Split `n` samples with the given training fraction. Deterministic in the
/// seed; every sample lands in exactly one side; the training side gets
/// `ceil(n · frac)` samples.
///
/// # Panics
/// Panics unless `0 < frac < 1`.
#[must_use]
pub fn split_indices(n: usize, frac: f64, seed: u64) -> Split {
    assert!(
        frac > 0.0 && frac < 1.0,
        "training fraction must be in (0,1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = ((n as f64) * frac).ceil() as usize;
    let mut train = idx[..n_train.min(n)].to_vec();
    let mut test = idx[n_train.min(n)..].to_vec();
    train.sort_unstable();
    test.sort_unstable();
    Split { train, test }
}

/// Extract the sub-matrix of the given (sorted) sample columns.
#[must_use]
pub fn take_columns(m: &BitMatrix, cols: &[usize]) -> BitMatrix {
    let mut keep = vec![0u64; m.words_per_row().max(1)];
    for &s in cols {
        assert!(s < m.n_samples(), "column {s} out of range");
        keep[s / 64] |= 1u64 << (s % 64);
    }
    m.splice_columns(&keep)
}

/// A cohort split into train/test tumor and normal matrices (the paper's
/// 75/25 protocol uses independent draws for tumors and normals).
#[derive(Clone, Debug)]
pub struct CohortSplit {
    /// Training tumor matrix.
    pub train_tumor: BitMatrix,
    /// Training normal matrix.
    pub train_normal: BitMatrix,
    /// Held-out tumor matrix.
    pub test_tumor: BitMatrix,
    /// Held-out normal matrix.
    pub test_normal: BitMatrix,
}

/// Split tumor and normal matrices 75/25 (or any fraction).
#[must_use]
pub fn split_cohort(tumor: &BitMatrix, normal: &BitMatrix, frac: f64, seed: u64) -> CohortSplit {
    let st = split_indices(tumor.n_samples(), frac, seed);
    let sn = split_indices(normal.n_samples(), frac, seed.wrapping_add(1));
    CohortSplit {
        train_tumor: take_columns(tumor, &st.train),
        train_normal: take_columns(normal, &sn.train),
        test_tumor: take_columns(tumor, &st.test),
        test_normal: take_columns(normal, &sn.test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_a_partition() {
        let s = split_indices(101, 0.75, 9);
        assert_eq!(s.train.len(), 76); // ceil(101 * .75)
        assert_eq!(s.test.len(), 25);
        let mut all = s.train.clone();
        all.extend(&s.test);
        all.sort_unstable();
        assert_eq!(all, (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        assert_eq!(split_indices(50, 0.75, 3), split_indices(50, 0.75, 3));
        assert_ne!(split_indices(50, 0.75, 3), split_indices(50, 0.75, 4));
    }

    #[test]
    #[should_panic(expected = "training fraction")]
    fn bad_fraction_panics() {
        let _ = split_indices(10, 1.0, 0);
    }

    #[test]
    fn take_columns_preserves_content() {
        let m = BitMatrix::from_rows(2, 100, &[vec![0, 50, 99], vec![1, 50]]);
        let sub = take_columns(&m, &[0, 50, 99]);
        assert_eq!(sub.n_samples(), 3);
        assert!(sub.get(0, 0) && sub.get(0, 1) && sub.get(0, 2));
        assert!(!sub.get(1, 0) && sub.get(1, 1) && !sub.get(1, 2));
    }

    #[test]
    fn cohort_split_shapes() {
        let t = BitMatrix::zeros(5, 80);
        let n = BitMatrix::zeros(5, 40);
        let cs = split_cohort(&t, &n, 0.75, 7);
        assert_eq!(cs.train_tumor.n_samples() + cs.test_tumor.n_samples(), 80);
        assert_eq!(cs.train_normal.n_samples() + cs.test_normal.n_samples(), 40);
        assert_eq!(cs.train_tumor.n_samples(), 60);
        assert_eq!(cs.train_normal.n_samples(), 30);
        assert_eq!(cs.train_tumor.n_genes(), 5);
    }

    #[test]
    fn splits_differ_between_tumor_and_normal_draws() {
        // Independent seeds for the two cohorts: equal sizes must not force
        // identical index choices.
        let s1 = split_indices(40, 0.75, 11);
        let s2 = split_indices(40, 0.75, 12);
        assert_ne!(s1.train, s2.train);
    }
}
