//! Minimal Mutation Annotation Format (MAF) I/O and summarization.
//!
//! The paper's pipeline downloads TCGA MAF files (Mutect2 calls) and
//! summarizes them into binary gene×sample matrices (§III-G). This module
//! implements the same funnel for our synthetic cohorts: a writer that emits
//! the subset of MAF columns the summarizer needs, a tolerant tab-separated
//! parser, and the summarizer itself. Round-tripping a cohort through MAF
//! text and back yields the original matrices (tested), so the algorithm's
//! input path matches the paper's end to end.

use multihit_core::bitmat::BitMatrix;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One MAF record (the fields the summarizer consumes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MafRecord {
    /// Gene symbol (`Hugo_Symbol`).
    pub hugo_symbol: String,
    /// Sample barcode (`Tumor_Sample_Barcode`).
    pub sample_barcode: String,
    /// Variant classification (e.g. `Missense_Mutation`, `Silent`).
    pub variant_classification: String,
    /// 1-based protein position, when applicable.
    pub protein_position: Option<u32>,
}

/// Variant classes counted as protein-altering by the summarizer; `Silent`
/// and intronic classes are ignored, mirroring standard driver analyses.
pub const PROTEIN_ALTERING: [&str; 7] = [
    "Missense_Mutation",
    "Nonsense_Mutation",
    "Frame_Shift_Del",
    "Frame_Shift_Ins",
    "In_Frame_Del",
    "In_Frame_Ins",
    "Splice_Site",
];

/// Is this classification protein-altering?
#[must_use]
pub fn is_protein_altering(class: &str) -> bool {
    PROTEIN_ALTERING.contains(&class)
}

const HEADER: &str = "Hugo_Symbol\tTumor_Sample_Barcode\tVariant_Classification\tProtein_position";

/// Serialize records to MAF text (header + one TSV line per record).
#[must_use]
pub fn write_maf(records: &[MafRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 48 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in records {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}",
            r.hugo_symbol,
            r.sample_barcode,
            r.variant_classification,
            r.protein_position
                .map_or_else(|| ".".to_string(), |p| p.to_string()),
        );
    }
    out
}

/// Errors from MAF parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum MafError {
    /// The header line is missing or lacks a required column.
    BadHeader(String),
    /// A data line has too few columns.
    ShortLine {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for MafError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MafError::BadHeader(c) => write!(f, "MAF header missing column {c}"),
            MafError::ShortLine { line } => write!(f, "MAF line {line} has too few columns"),
        }
    }
}

impl std::error::Error for MafError {}

/// Parse MAF text. Column order is taken from the header (TCGA MAFs carry
/// 100+ columns; we locate the four we need). Lines starting with `#` are
/// comments. Unparsable protein positions become `None`.
pub fn parse_maf(text: &str) -> Result<Vec<MafRecord>, MafError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.starts_with('#'));
    let (_, header) = lines
        .next()
        .ok_or_else(|| MafError::BadHeader("Hugo_Symbol".into()))?;
    let cols: Vec<&str> = header.split('\t').collect();
    let find = |name: &str| -> Result<usize, MafError> {
        cols.iter()
            .position(|c| *c == name)
            .ok_or_else(|| MafError::BadHeader(name.into()))
    };
    let c_sym = find("Hugo_Symbol")?;
    let c_bar = find("Tumor_Sample_Barcode")?;
    let c_cls = find("Variant_Classification")?;
    let c_pos = find("Protein_position")?;
    let needed = c_sym.max(c_bar).max(c_cls).max(c_pos);

    let mut out = Vec::new();
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() <= needed {
            return Err(MafError::ShortLine { line: idx + 1 });
        }
        out.push(MafRecord {
            hugo_symbol: f[c_sym].to_string(),
            sample_barcode: f[c_bar].to_string(),
            variant_classification: f[c_cls].to_string(),
            protein_position: f[c_pos].split('/').next().and_then(|p| p.parse().ok()),
        });
    }
    Ok(out)
}

/// Result of summarizing MAF records against a fixed gene universe.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Binary gene×sample matrix over protein-altering records.
    pub matrix: BitMatrix,
    /// Sample barcodes in column order.
    pub samples: Vec<String>,
    /// Records whose gene symbol was not in the universe.
    pub unknown_genes: usize,
    /// Records skipped as non-protein-altering.
    pub silent_skipped: usize,
}

/// Summarize records into a gene×sample bit matrix.
///
/// `gene_index` maps symbol → row. Samples are assigned columns in first-seen
/// order (deterministic given record order).
#[must_use]
pub fn summarize(records: &[MafRecord], gene_index: &HashMap<String, usize>) -> Summary {
    let mut samples: Vec<String> = Vec::new();
    let mut sample_index: HashMap<String, usize> = HashMap::new();
    let mut cells: Vec<(usize, usize)> = Vec::new();
    let mut unknown_genes = 0usize;
    let mut silent_skipped = 0usize;

    for r in records {
        if !is_protein_altering(&r.variant_classification) {
            silent_skipped += 1;
            continue;
        }
        let Some(&g) = gene_index.get(&r.hugo_symbol) else {
            unknown_genes += 1;
            continue;
        };
        let next = samples.len();
        let s = *sample_index.entry(r.sample_barcode.clone()).or_insert(next);
        if s == next {
            samples.push(r.sample_barcode.clone());
        }
        cells.push((g, s));
    }

    let mut matrix = BitMatrix::zeros(gene_index.len(), samples.len());
    for (g, s) in cells {
        matrix.set(g, s, true);
    }
    Summary {
        matrix,
        samples,
        unknown_genes,
        silent_skipped,
    }
}

/// Emit a cohort's tumor matrix as MAF records (one record per set bit),
/// with deterministic barcodes `{prefix}-{s:04}`. Positions, when a
/// position profile is supplied per gene, come from the profile; otherwise
/// position 1 is used.
#[must_use]
pub fn matrix_to_records(
    matrix: &BitMatrix,
    gene_names: &[String],
    barcode_prefix: &str,
) -> Vec<MafRecord> {
    let mut out = Vec::new();
    for s in 0..matrix.n_samples() {
        for (g, name) in gene_names.iter().enumerate() {
            if matrix.get(g, s) {
                out.push(MafRecord {
                    hugo_symbol: name.clone(),
                    sample_barcode: format!("{barcode_prefix}-{s:04}"),
                    variant_classification: "Missense_Mutation".to_string(),
                    protein_position: Some(1),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(names: &[&str]) -> HashMap<String, usize> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), i))
            .collect()
    }

    #[test]
    fn roundtrip_write_parse() {
        let recs = vec![
            MafRecord {
                hugo_symbol: "IDH1".into(),
                sample_barcode: "TCGA-01".into(),
                variant_classification: "Missense_Mutation".into(),
                protein_position: Some(132),
            },
            MafRecord {
                hugo_symbol: "MUC6".into(),
                sample_barcode: "TCGA-02".into(),
                variant_classification: "Silent".into(),
                protein_position: None,
            },
        ];
        let text = write_maf(&recs);
        let back = parse_maf(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn parser_tolerates_comments_and_column_order() {
        let text = "#version 2.4\nTumor_Sample_Barcode\tHugo_Symbol\tProtein_position\tVariant_Classification\nS1\tTP53\t273\tMissense_Mutation\n";
        let r = parse_maf(text).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].hugo_symbol, "TP53");
        assert_eq!(r[0].protein_position, Some(273));
    }

    #[test]
    fn parser_handles_slash_positions() {
        // TCGA writes positions as "132/414".
        let text = format!("{HEADER}\nIDH1\tS1\tMissense_Mutation\t132/414\n");
        let r = parse_maf(&text).unwrap();
        assert_eq!(r[0].protein_position, Some(132));
    }

    #[test]
    fn parser_rejects_missing_column() {
        let err = parse_maf("Hugo_Symbol\tTumor_Sample_Barcode\nX\tY\n").unwrap_err();
        assert_eq!(err, MafError::BadHeader("Variant_Classification".into()));
    }

    #[test]
    fn parser_rejects_short_line() {
        let text = format!("{HEADER}\nIDH1\tS1\n");
        let err = parse_maf(&text).unwrap_err();
        assert!(matches!(err, MafError::ShortLine { .. }));
    }

    #[test]
    fn summarize_skips_silent_and_unknown() {
        let gi = universe(&["A", "B"]);
        let recs = vec![
            MafRecord {
                hugo_symbol: "A".into(),
                sample_barcode: "S1".into(),
                variant_classification: "Missense_Mutation".into(),
                protein_position: None,
            },
            MafRecord {
                hugo_symbol: "A".into(),
                sample_barcode: "S1".into(),
                variant_classification: "Silent".into(),
                protein_position: None,
            },
            MafRecord {
                hugo_symbol: "ZZZ".into(),
                sample_barcode: "S2".into(),
                variant_classification: "Nonsense_Mutation".into(),
                protein_position: None,
            },
        ];
        let s = summarize(&recs, &gi);
        assert_eq!(s.silent_skipped, 1);
        assert_eq!(s.unknown_genes, 1);
        assert_eq!(s.samples, vec!["S1".to_string()]);
        assert!(s.matrix.get(0, 0));
        assert!(!s.matrix.get(1, 0));
    }

    #[test]
    fn duplicate_mutations_collapse_to_one_bit() {
        let gi = universe(&["A"]);
        let rec = MafRecord {
            hugo_symbol: "A".into(),
            sample_barcode: "S1".into(),
            variant_classification: "Missense_Mutation".into(),
            protein_position: Some(5),
        };
        let s = summarize(&[rec.clone(), rec], &gi);
        assert_eq!(s.matrix.row_popcount(0), 1);
    }

    #[test]
    fn cohort_roundtrips_through_maf() {
        use crate::synth::{gene_symbols, generate, CohortSpec};
        let cohort = generate(&CohortSpec {
            n_genes: 20,
            n_tumor: 30,
            ..Default::default()
        });
        let names = gene_symbols(&cohort);
        let recs = matrix_to_records(&cohort.tumor, &names, "TCGA-T");
        let text = write_maf(&recs);
        let parsed = parse_maf(&text).unwrap();
        let gi: HashMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let summary = summarize(&parsed, &gi);
        // Samples with zero mutations never appear in a MAF; compare only
        // non-empty columns, which keep their relative order.
        let nonempty: Vec<usize> = (0..cohort.tumor.n_samples())
            .filter(|&s| (0..20).any(|g| cohort.tumor.get(g, s)))
            .collect();
        assert_eq!(summary.samples.len(), nonempty.len());
        for (new_s, &old_s) in nonempty.iter().enumerate() {
            for g in 0..20 {
                assert_eq!(summary.matrix.get(g, new_s), cohort.tumor.get(g, old_s));
            }
        }
    }
}
