//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the small subset of the rand 0.9 API it actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], [`Rng::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is splitmix64 — deterministic in the seed, statistically
//! fine for synthetic-cohort generation, and **not** bit-compatible with the
//! real rand crate (streams differ; all workspace tests assert invariants,
//! not exact draws).

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a 64-bit word source.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience constructor).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::random`].
pub trait SampleStandard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased draw from `[0, n)` (Lemire-style rejection, simplified).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform draw over the type's whole domain (`f64` in `[0,1)`).
    fn random<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        /// Shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub use seq::SliceRandom;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(1..=10);
            assert!((1..=10).contains(&v));
            let w: usize = rng.random_range(0..7);
            assert!(w < 7);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice ordered (astronomically unlikely)"
        );
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
