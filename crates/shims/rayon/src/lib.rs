//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the rayon API the workspace uses — `par_iter()` on slices,
//! `into_par_iter()` on integer ranges and vectors, `map`, `collect`,
//! `reduce`, and [`current_num_threads`] — implemented with
//! `std::thread::scope` over contiguous chunks.
//!
//! Sources implement [`ParSource`]: they know their length and split into
//! per-worker chunk iterators *without* materializing items first — an
//! integer range splits arithmetically into sub-ranges, a `Vec` splits in
//! place, a slice splits into subslices. `reduce` folds each chunk directly
//! into one partial per worker (no intermediate `Vec` of mapped results);
//! `collect` concatenates per-worker vectors in chunk order. Chunks are
//! contiguous and folded in input order, so deterministic reductions (like
//! the workspace's `Scored::max_det`, or any associative op) behave
//! identically to a sequential fold.

use std::ops::Range;

/// Worker threads a parallel call will use (one per available core).
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Everything a caller needs in scope; mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// A splittable source of items: the lazy seed of a parallel iterator.
pub trait ParSource: Send + Sized {
    /// Item type produced.
    type Item: Send;
    /// Per-worker chunk iterator.
    type Chunk: Iterator<Item = Self::Item> + Send;

    /// Number of items the source will yield.
    fn source_len(&self) -> usize;

    /// Split into at most `parts` contiguous chunk iterators, in input
    /// order, covering every item exactly once.
    fn split(self, parts: usize) -> Vec<Self::Chunk>;
}

/// A lazy parallel iterator over a [`ParSource`].
pub struct ParIter<S> {
    source: S,
}

/// A lazily mapped parallel iterator.
pub struct ParMap<S, F> {
    source: S,
    f: F,
}

impl<S: ParSource> ParIter<S> {
    /// Map each item with `f` (runs when the chain is consumed).
    pub fn map<U, F>(self, f: F) -> ParMap<S, F>
    where
        U: Send,
        F: Fn(S::Item) -> U + Sync,
    {
        ParMap {
            source: self.source,
            f,
        }
    }
}

/// Run one closure per chunk on scoped threads, returning results in chunk
/// order. A single chunk runs on the calling thread.
fn run_chunks<C, T, W>(chunks: Vec<C>, work: W) -> Vec<T>
where
    C: Send,
    T: Send,
    W: Fn(C) -> T + Sync,
{
    if chunks.len() <= 1 {
        return chunks.into_iter().map(work).collect();
    }
    let work = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || work(c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

impl<S, U, F> ParMap<S, F>
where
    S: ParSource,
    U: Send,
    F: Fn(S::Item) -> U + Sync,
{
    /// Collect mapped results in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let ParMap { source, f } = self;
        let n = source.source_len();
        let chunks = source.split(current_num_threads());
        let parts = run_chunks(chunks, |c| c.map(&f).collect::<Vec<U>>());
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        C::from(out)
    }

    /// Fold mapped results with `op`, seeded by `identity`.
    ///
    /// Each worker streams its chunk straight into one partial accumulator;
    /// only the per-worker partials are materialized, then folded in chunk
    /// order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        let ParMap { source, f } = self;
        let chunks = source.split(current_num_threads());
        let partials = run_chunks(chunks, |c| c.map(&f).fold(identity(), &op));
        partials.into_iter().fold(identity(), op)
    }
}

/// Owned conversion into a parallel iterator (`0..n` ranges, vectors).
pub trait IntoParallelIterator {
    /// The splittable source the chain runs over.
    type Source: ParSource;
    /// Start a lazy parallel chain.
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl ParSource for Range<$t> {
            type Item = $t;
            type Chunk = Range<$t>;

            fn source_len(&self) -> usize {
                if self.end <= self.start {
                    0
                } else {
                    (self.end - self.start) as usize
                }
            }

            fn split(self, parts: usize) -> Vec<Range<$t>> {
                let n = self.source_len();
                if n == 0 {
                    return Vec::new();
                }
                let chunk = n.div_ceil(parts.max(1)) as $t;
                let mut out = Vec::new();
                let mut lo = self.start;
                while lo < self.end {
                    let hi = self.end.min(lo + chunk);
                    out.push(lo..hi);
                    lo = hi;
                }
                out
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Source = Range<$t>;
            fn into_par_iter(self) -> ParIter<Range<$t>> {
                ParIter { source: self }
            }
        }
    )*};
}

impl_range_par!(u32, u64, usize);

impl<T: Send> ParSource for Vec<T> {
    type Item = T;
    type Chunk = std::vec::IntoIter<T>;

    fn source_len(&self) -> usize {
        self.len()
    }

    fn split(mut self, parts: usize) -> Vec<Self::Chunk> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let chunk = n.div_ceil(parts.max(1));
        let mut out = Vec::with_capacity(parts);
        while !self.is_empty() {
            let rest = self.split_off(chunk.min(self.len()));
            out.push(std::mem::replace(&mut self, rest).into_iter());
        }
        out
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Source = Vec<T>;
    fn into_par_iter(self) -> ParIter<Vec<T>> {
        ParIter { source: self }
    }
}

impl<'a, T: Sync + 'a> ParSource for &'a [T] {
    type Item = &'a T;
    type Chunk = std::slice::Iter<'a, T>;

    fn source_len(&self) -> usize {
        self.len()
    }

    fn split(self, parts: usize) -> Vec<Self::Chunk> {
        if self.is_empty() {
            return Vec::new();
        }
        let chunk = self.len().div_ceil(parts.max(1));
        self.chunks(chunk).map(<[T]>::iter).collect()
    }
}

/// Borrowing conversion (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The splittable borrowing source.
    type Source: ParSource;
    /// Start a lazy parallel chain over borrows.
    fn par_iter(&'a self) -> ParIter<Self::Source>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Source = &'a [T];
    fn par_iter(&'a self) -> ParIter<&'a [T]> {
        ParIter { source: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Source = &'a [T];
    fn par_iter(&'a self) -> ParIter<&'a [T]> {
        ParIter {
            source: self.as_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ParSource;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let total = (0u64..10_000)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0u64..10_000).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn par_iter_over_slice() {
        let xs = [(1u64, 2u64), (3, 4), (5, 6)];
        let sums: Vec<u64> = xs.par_iter().map(|&(a, b)| a + b).collect();
        assert_eq!(sums, vec![3, 7, 11]);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u64> = (0u64..0).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn vec_source_moves_items_without_clone() {
        // String is not Copy: proves items are moved chunk-wise, not cloned.
        let words: Vec<String> = (0..100).map(|i| format!("w{i}")).collect();
        let lens: Vec<usize> = words.into_par_iter().map(|w| w.len()).collect();
        assert_eq!(
            lens.iter().sum::<usize>(),
            (0..100).map(|i| format!("w{i}").len()).sum()
        );
    }

    #[test]
    fn range_split_is_a_partition() {
        for parts in [1usize, 3, 7, 64] {
            let chunks = (0u64..1000).split(parts);
            assert!(chunks.len() <= parts.max(1));
            let mut expect = 0u64;
            for c in chunks {
                for x in c {
                    assert_eq!(x, expect);
                    expect += 1;
                }
            }
            assert_eq!(expect, 1000);
        }
    }

    #[test]
    fn noncommutative_reduce_keeps_chunk_order() {
        // String concatenation is associative but not commutative: the fold
        // must visit chunks in input order.
        let joined = (0u32..50)
            .into_par_iter()
            .map(|x| x.to_string())
            .reduce(String::new, |a, b| a + &b);
        let want: String = (0u32..50).map(|x| x.to_string()).collect();
        assert_eq!(joined, want);
    }
}
