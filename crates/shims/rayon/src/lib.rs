//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the rayon API the workspace uses — `par_iter()` on slices,
//! `into_par_iter()` on integer ranges, `map`, `collect`, `reduce`, and
//! [`current_num_threads`] — implemented with `std::thread::scope` over
//! contiguous chunks. Results are produced in input order, so deterministic
//! reductions (like the workspace's `Scored::max_det`) behave identically
//! to real rayon.

use std::ops::Range;

/// Worker threads a parallel call will use (one per available core).
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Everything a caller needs in scope; mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A lazily mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Map each item with `f` (runs when the chain is consumed).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    fn run(self) -> Vec<U> {
        let ParMap { items, f } = self;
        let n = items.len();
        let threads = current_num_threads().min(n);
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let mut pending = items.into_iter();
        let mut chunks_in: Vec<Vec<T>> = Vec::with_capacity(threads);
        loop {
            let c: Vec<T> = pending.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks_in.push(c);
        }
        let f = &f;
        std::thread::scope(|s| {
            for (slots, chunk_items) in out.chunks_mut(chunk).zip(chunks_in) {
                s.spawn(move || {
                    for (slot, item) in slots.iter_mut().zip(chunk_items) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.expect("worker filled every slot"))
            .collect()
    }

    /// Collect mapped results in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        C::from(self.run())
    }

    /// Fold mapped results with `op`, seeded by `identity`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U,
        OP: Fn(U, U) -> U,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

/// Owned conversion into a parallel iterator (`0..n` ranges).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Materialize into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a borrow).
    type Item: Send + 'a;
    /// Materialize references into a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let total = (0u64..10_000)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0u64..10_000).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn par_iter_over_slice() {
        let xs = [(1u64, 2u64), (3, 4), (5, 6)];
        let sums: Vec<u64> = xs.par_iter().map(|&(a, b)| a + b).collect();
        assert_eq!(sums, vec![3, 7, 11]);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u64> = (0u64..0).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }
}
