//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this crate reimplements
//! the subset of the proptest API the workspace's test suites use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::option::of`, a tiny character-class regex generator for `&str`
//! patterns, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! - inputs are random but there is **no shrinking** — a failure reports the
//!   sampled case number and message only;
//! - `prop_assume!` skips the current case rather than resampling, so a
//!   heavily-filtered property effectively runs fewer cases;
//! - sampling is deterministic per test (seeded from the test name), so
//!   failures reproduce exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator used for all sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so each property gets a stable stream.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Debiased uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each produced value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Character-class regex generation for `&str` strategies.
///
/// Supports exactly the grammar the workspace's tests use: literal
/// characters, `[..]` classes with ranges (`[A-Z0-9]`), and `{m}` /
/// `{m,n}` quantifiers.
fn sample_char_class_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = if chars[i] == '[' {
            i += 1;
            let mut set = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend(lo..=hi);
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
            i += 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let m = spec.trim().parse::<usize>().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(choices[rng.below(choices.len() as u64) as usize]);
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_char_class_pattern(self, rng)
    }
}

/// Types with a canonical whole-domain strategy, used via [`any`].
pub trait Arbitrary {
    /// Draw one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy for any [`Arbitrary`] type; see [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Whole-domain strategy for `T` (`any::<bool>()`, `any::<u8>()`, ...).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` module tree mirrored from real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Inclusive-exclusive element-count specification for [`vec`].
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy producing `Vec`s of `element`-generated values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling from fixed option sets.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy drawing uniformly from a fixed list; see [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Uniform choice among `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy producing `None` some of the time; see [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some(value)` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("property {} failed on case #{}: {}", stringify!($name), case, msg);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside `proptest!`; failure reports the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assert inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// One-stop imports for test files.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn char_class_patterns_match_shape() {
        let mut rng = crate::TestRng::for_test("shape");
        for _ in 0..200 {
            let s = crate::Strategy::sample(&"[A-Z][A-Z0-9]{1,6}", &mut rng);
            assert!((2..=7).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()));
            let t = crate::Strategy::sample(&"[A-Z]{2}-[0-9]{2}", &mut rng);
            assert_eq!(t.len(), 5);
            assert_eq!(t.as_bytes()[2], b'-');
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 2usize..=9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn flat_map_dependency_holds((n, k) in (2u64..50).prop_flat_map(|n| (Just(n), 1..n))) {
            prop_assert!(k < n, "k {k} >= n {n}");
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 1..9), w in prop::collection::vec(0u32..5, 4)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn select_and_option(c in prop::sample::select(vec!["a", "b"]), o in prop::option::of(1u32..4)) {
            prop_assert!(c == "a" || c == "b");
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }

        #[test]
        fn assume_skips_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a < b);
            prop_assert!(a < b);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        assert_eq!(
            (0..32).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..32).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
