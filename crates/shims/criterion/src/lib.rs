//! Offline stand-in for `criterion`.
//!
//! Implements the surface the `multihit-bench` benches use: `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `Bencher::iter`,
//! `black_box`, `BenchmarkId`, and the `criterion_group!`/`criterion_main!`
//! macros. There is no statistics engine: each benchmark runs a fixed small
//! number of iterations and reports the mean wall-clock time. With `--test`
//! on the command line (CI smoke mode, `cargo bench -- --test`) each body
//! runs exactly once.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting the benched
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Time `f`, called `iters` times (once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = if self.test_mode { 1 } else { self.iters };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
        self.iters = iters;
    }
}

/// Label for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Use the parameter's `Display` form as the benchmark name.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver; handed to each registered function.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 10,
        }
    }
}

fn run_one(label: &str, test_mode: bool, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        test_mode,
        iters,
        mean: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok (smoke, 1 iteration)");
    } else {
        println!("{label}: {:?} mean over {} iterations", b.mean, b.iters);
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &name.to_string(),
            self.test_mode,
            self.sample_size as u64,
            f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set iteration count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.parent.test_mode, self.sample_size as u64, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(
            &label,
            self.parent.test_mode,
            self.sample_size as u64,
            |b| f(b, input),
        );
        self
    }

    /// End the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body() {
        let mut hits = 0u64;
        let mut b = Bencher {
            test_mode: false,
            iters: 5,
            mean: Duration::ZERO,
        };
        b.iter(|| hits += 1);
        assert_eq!(hits, 5);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut hits = 0u64;
        let mut b = Bencher {
            test_mode: true,
            iters: 100,
            mean: Duration::ZERO,
        };
        b.iter(|| hits += 1);
        assert_eq!(hits, 1);
    }

    #[test]
    fn group_labels_and_chaining() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("a", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
