//! Offline stand-in for `crossbeam`.
//!
//! Provides only `crossbeam::channel::{unbounded, Sender, Receiver}` — the
//! surface `multihit-cluster`'s rank mesh uses. Semantics match crossbeam's
//! unbounded channel for this use case: senders are `Clone + Send + Sync`,
//! `send` fails once the receiver is gone, `recv` blocks until a message
//! arrives or every sender has hung up, and `recv_timeout` bounds the wait
//! (the fault-tolerant collectives' failure detector is built on it).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error from [`Sender::send`]: the receiver disconnected; the message
    /// is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::recv`]: the channel is empty and every sender
    /// disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// The channel is empty and every sender disconnected.
        Disconnected,
    }

    /// Producer half; clone freely across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Consumer half (single consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel mutex poisoned");
            if !st.receiver_alive {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel mutex poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.shared.state.lock().expect("channel mutex poisoned");
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once all senders hung up and
        /// the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel mutex poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel mutex poisoned");
            }
        }

        /// Block until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel mutex poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .expect("channel mutex poisoned");
                st = guard;
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel mutex poisoned")
                .receiver_alive = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, RecvTimeoutError};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn crosses_threads_via_shared_sender_vec() {
        let (tx, rx) = unbounded::<usize>();
        let senders = Arc::new(vec![tx]);
        let mut handles = Vec::new();
        for i in 0..8 {
            let s = Arc::clone(&senders);
            handles.push(std::thread::spawn(move || s[0].send(i).unwrap()));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(senders);
        let mut got: Vec<usize> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
