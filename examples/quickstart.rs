//! Quickstart: discover multi-hit combinations on a small synthetic cohort.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use multihit::core::greedy::{discover, GreedyConfig};
use multihit::data::synth::{gene_symbols, generate, CohortSpec};

fn main() {
    // A cohort with three planted 3-gene driver combinations.
    let spec = CohortSpec {
        n_genes: 48,
        n_tumor: 120,
        n_normal: 80,
        n_driver_combos: 3,
        hits_per_combo: 3,
        driver_penetrance: 0.95,
        passenger_rate_tumor: 0.03,
        passenger_rate_normal: 0.01,
        seed: 7,
    };
    let cohort = generate(&spec);
    let names = gene_symbols(&cohort);
    println!(
        "cohort: {} genes, {} tumor / {} normal samples",
        spec.n_genes, spec.n_tumor, spec.n_normal
    );
    println!("planted driver combinations:");
    for p in &cohort.planted {
        let named: Vec<&str> = p.iter().map(|&g| names[g as usize].as_str()).collect();
        println!("  {named:?}");
    }

    // Run the greedy weighted-set-cover search for 3-hit combinations.
    let result = discover::<3>(&cohort.tumor, &cohort.normal, &GreedyConfig::default());

    println!("\ndiscovered {} combinations:", result.combinations.len());
    for (it, rec) in result.iterations.iter().enumerate() {
        let named: Vec<&str> = rec
            .best
            .genes
            .iter()
            .map(|&g| names[g as usize].as_str())
            .collect();
        println!(
            "  #{it}: {named:?}  F = {:.4}  covered {} tumors ({} remaining)",
            rec.f, rec.newly_covered, rec.remaining
        );
    }
    println!(
        "\ncoverage: {:.1}% of tumor samples",
        100.0 * result.coverage(spec.n_tumor as u32)
    );

    // Did we recover the planted ground truth?
    let recovered = cohort
        .planted
        .iter()
        .filter(|p| {
            result
                .combinations
                .iter()
                .any(|c| p.iter().all(|g| c.contains(g)))
        })
        .count();
    println!(
        "recovered {recovered}/{} planted combinations",
        cohort.planted.len()
    );
}
