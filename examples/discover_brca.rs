//! The paper's end-to-end pipeline on a synthetic BRCA-like cohort:
//! generate → serialize to MAF → summarize back → 75/25 split → multi-hit
//! discovery on the training split → classification on the held-out split.
//!
//! ```text
//! cargo run --example discover_brca --release
//! ```

use multihit::core::greedy::{discover, GreedyConfig};
use multihit::data::classify::ComboClassifier;
use multihit::data::maf::{matrix_to_records, parse_maf, summarize, write_maf};
use multihit::data::presets::CancerType;
use multihit::data::split::split_cohort;
use multihit::data::synth::{gene_symbols, generate};
use std::collections::HashMap;

fn main() {
    // A reduced-G BRCA-like cohort (the paper's G = 19411 needs the modeled
    // cluster path; see the summit_scaling example).
    let spec = CancerType::Brca.mini_spec(40, 911);
    let cohort = generate(&spec);
    let names = gene_symbols(&cohort);
    println!(
        "BRCA-like cohort: {} genes, {} tumor / {} normal samples",
        spec.n_genes, spec.n_tumor, spec.n_normal
    );

    // Round-trip the tumor matrix through the MAF pipeline (§III-G).
    let records = matrix_to_records(&cohort.tumor, &names, "TCGA-BRCA");
    let maf_text = write_maf(&records);
    println!("MAF: {} records, {} bytes", records.len(), maf_text.len());
    let parsed = parse_maf(&maf_text).expect("roundtrip parse");
    let gene_index: HashMap<String, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i))
        .collect();
    let summary = summarize(&parsed, &gene_index);
    println!(
        "summarized: {} samples with mutations, {} silent skipped",
        summary.samples.len(),
        summary.silent_skipped
    );

    // 75/25 split, then greedy 4-hit discovery on the training matrices.
    let split = split_cohort(&cohort.tumor, &cohort.normal, 0.75, 1234);
    println!(
        "split: {} train / {} test tumors, {} train / {} test normals",
        split.train_tumor.n_samples(),
        split.test_tumor.n_samples(),
        split.train_normal.n_samples(),
        split.test_normal.n_samples()
    );
    // BRCA is estimated to require only 2-3 hits (the paper runs it at
    // h = 4 purely as the largest scaling dataset); discover at h = 3.
    let result = discover::<3>(
        &split.train_tumor,
        &split.train_normal,
        &GreedyConfig::default(),
    );
    println!(
        "\ndiscovered {} 3-hit combinations:",
        result.combinations.len()
    );
    for rec in &result.iterations {
        let named: Vec<&str> = rec
            .best
            .genes
            .iter()
            .map(|&g| names[g as usize].as_str())
            .collect();
        println!(
            "  {named:?}  F = {:.4}  TP = {}  TN = {}",
            rec.f, rec.best.tp, rec.best.tn
        );
    }

    // Classify the held-out split (Fig 9's protocol).
    let classifier = ComboClassifier::from_fixed(&result.combinations);
    let perf = classifier.evaluate(&split.test_tumor, &split.test_normal);
    let (slo, shi) = perf.sensitivity.ci95();
    let (plo, phi) = perf.specificity.ci95();
    println!(
        "\nheld-out sensitivity: {:.1}% (95% CI {:.1}-{:.1}%)",
        100.0 * perf.sensitivity.value(),
        100.0 * slo,
        100.0 * shi
    );
    println!(
        "held-out specificity: {:.1}% (95% CI {:.1}-{:.1}%)",
        100.0 * perf.specificity.value(),
        100.0 * plo,
        100.0 * phi
    );
}
