//! From discovery to a therapy panel: find multi-hit combinations, then
//! compute the minimal set of gene targets that disrupts every one of them
//! (the abstract's "rational basis for targeted combination therapy").
//!
//! ```text
//! cargo run --example therapy_panel --release
//! ```

use multihit::core::greedy::{discover, GreedyConfig};
use multihit::data::synth::{gene_symbols, generate, CohortSpec};
use multihit::data::therapy::{gene_centrality, greedy_panel};

fn main() {
    let cohort = generate(&CohortSpec {
        n_genes: 48,
        n_tumor: 160,
        n_normal: 90,
        n_driver_combos: 4,
        hits_per_combo: 3,
        driver_penetrance: 0.92,
        passenger_rate_tumor: 0.04,
        passenger_rate_normal: 0.015,
        seed: 2718,
    });
    let names = gene_symbols(&cohort);

    let run = discover::<3>(&cohort.tumor, &cohort.normal, &GreedyConfig::default());
    println!("discovered {} combinations:", run.combinations.len());
    for c in &run.combinations {
        let named: Vec<&str> = c.iter().map(|&g| names[g as usize].as_str()).collect();
        println!("  {named:?}");
    }

    let combos: Vec<Vec<u32>> = run.combinations.iter().map(|c| c.to_vec()).collect();

    println!("\ngene centrality (combinations participated in):");
    for (g, n) in gene_centrality(&combos).into_iter().take(6) {
        println!("  {:<8} {n}", names[g as usize]);
    }

    let panel = greedy_panel(&combos);
    println!(
        "\ntherapy panel: {} target(s) disrupt all {} combinations:",
        panel.targets.len(),
        combos.len()
    );
    for (t, cov) in panel.targets.iter().zip(&panel.coverage) {
        println!(
            "  target {:<8} cumulative combinations hit: {cov}/{}",
            names[*t as usize],
            combos.len()
        );
    }
    assert!(panel.hits_all(&combos));
    println!("\nevery discovered combination is disrupted by the panel.");
}
