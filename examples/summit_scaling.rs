//! Paper-scale scale-out study: model the BRCA 4-hit run on 100–1000
//! Summit nodes — strong scaling, the ED-vs-EA scheduler comparison, and
//! the per-GPU utilization contrast between the 2x2 and 3x1 schemes.
//!
//! ```text
//! cargo run --example summit_scaling --release
//! ```

use multihit::cluster::driver::{model_run, ModelConfig, SchedulerKind};
use multihit::cluster::timing::{average_efficiency, strong_scaling_sweep};
use multihit::core::schemes::Scheme4;
use multihit::gpusim::counters::{run_metrics, utilization_summary};
use multihit::gpusim::CostModel;

fn main() {
    // Strong scaling, 100 → 1000 nodes (Fig 4a).
    println!("strong scaling, BRCA 4-hit, 3x1 scheme (modeled):");
    let nodes: Vec<usize> = (1..=10).map(|i| i * 100).collect();
    let pts = strong_scaling_sweep(ModelConfig::brca, &nodes);
    for p in &pts {
        println!(
            "  {:>4} nodes ({:>4} GPUs): {:>8.1} s  efficiency {:>6.2}%",
            p.nodes,
            p.nodes * 6,
            p.time_s,
            100.0 * p.efficiency
        );
    }
    println!(
        "  average efficiency 200-1000 nodes: {:.2}% (paper: 90.14%)",
        100.0 * average_efficiency(&pts)
    );

    // ED vs EA (§IV-B: paper measured 13943 s vs 4607 s with 2x2).
    println!("\nED vs EA scheduler, 2x2 scheme, 100 nodes (modeled):");
    let mut cfg = ModelConfig::brca(100);
    cfg.scheme = Scheme4::TwoXTwo;
    cfg.scheduler = SchedulerKind::EquiDistance;
    let ed = model_run(&cfg).total_s;
    cfg.scheduler = SchedulerKind::EquiArea;
    let ea = model_run(&cfg).total_s;
    println!("  equi-distance: {ed:>9.1} s");
    println!("  equi-area:     {ea:>9.1} s   ({:.2}x speedup)", ed / ea);

    // Per-GPU utilization: 2x2 vs 3x1 (Figs 6 and 7).
    println!("\nper-GPU utilization across 600 GPUs, first iteration (modeled):");
    for scheme in [Scheme4::TwoXTwo, Scheme4::ThreeXOne] {
        let mut c = ModelConfig::brca(100);
        c.scheme = scheme;
        c.coverage = vec![1.0];
        let run = model_run(&c);
        let model = CostModel::new(c.node.gpu.clone());
        let metrics = run_metrics(&model, &run.iterations[0].per_gpu);
        let (mean, min, max) = utilization_summary(&metrics);
        println!(
            "  {}: mean {:>6.2}%  min {:>6.2}%  max {:>6.2}%",
            scheme.name(),
            100.0 * mean,
            100.0 * min,
            100.0 * max
        );
    }
}
