//! Mutation-level discovery (the paper's §V future-work direction): expand
//! a gene-level cohort into specific mutation sites, filter to recurrent
//! ("probable oncogenic") sites, and rediscover — the result pinpoints
//! hotspot positions (the IDH1-R132 regime) instead of whole genes.
//!
//! ```text
//! cargo run --example mutation_level --release
//! ```

use multihit::core::greedy::{discover, GreedyConfig};
use multihit::data::mutations::{expand, filter_recurrent, ExpansionSpec};
use multihit::data::synth::{gene_symbols, generate, CohortSpec};

fn main() {
    let cohort = generate(&CohortSpec {
        n_genes: 40,
        n_tumor: 150,
        n_normal: 90,
        n_driver_combos: 3,
        hits_per_combo: 2,
        driver_penetrance: 1.0,
        passenger_rate_tumor: 0.05,
        passenger_rate_normal: 0.02,
        seed: 314,
    });
    let names = gene_symbols(&cohort);

    // Gene-level discovery: names whole genes.
    let gene_level = discover::<2>(
        &cohort.tumor,
        &cohort.normal,
        &GreedyConfig {
            max_combinations: 3,
            ..GreedyConfig::default()
        },
    );
    println!("gene-level combinations:");
    for c in &gene_level.combinations {
        let named: Vec<&str> = c.iter().map(|&g| names[g as usize].as_str()).collect();
        println!("  {named:?}");
    }

    // Expand to mutation sites (drivers concentrate on a hotspot position).
    let mc = expand(&cohort, &ExpansionSpec::default());
    println!(
        "\nexpanded to {} mutation sites ({:.1}x the gene universe)",
        mc.sites.len(),
        mc.expansion_factor(40)
    );

    // §V mitigation: keep only recurrent sites.
    let (filtered, kept) = filter_recurrent(&mc, 5);
    println!(
        "recurrence filter (>=5 tumors): kept {} sites ({:.1}% of all)",
        filtered.sites.len(),
        100.0 * kept
    );

    // Site-level discovery: names gene:position pairs.
    let site_level = discover::<2>(
        &filtered.tumor,
        &filtered.normal,
        &GreedyConfig {
            max_combinations: 3,
            ..GreedyConfig::default()
        },
    );
    println!("\nsite-level combinations (gene:position):");
    for c in &site_level.combinations {
        let named: Vec<String> = c
            .iter()
            .map(|&r| {
                let s = filtered.sites[r as usize];
                format!("{}:{}", names[s.gene as usize], s.position)
            })
            .collect();
        println!("  {named:?}");
    }

    println!("\nplanted driver hotspots:");
    for d in &filtered.driver_sites {
        let found = site_level
            .combinations
            .iter()
            .flatten()
            .any(|&r| filtered.sites[r as usize] == *d);
        println!(
            "  {}:{}  pinpointed: {found}",
            names[d.gene as usize], d.position
        );
    }
}
