//! Functional distributed discovery: run the 4-hit search across simulated
//! cluster nodes — real rank threads, real kernel execution on the GPU
//! simulator, real binomial-tree reduction — and verify the result is
//! bit-identical to the single-process reference at every cluster shape.
//!
//! ```text
//! cargo run --example distributed_cluster --release
//! ```

use multihit::cluster::driver::{distributed_discover4, DistributedConfig, SchedulerKind};
use multihit::cluster::topology::ClusterShape;
use multihit::core::greedy::{discover, GreedyConfig};
use multihit::core::schemes::Scheme4;
use multihit::data::synth::{generate, CohortSpec};

fn main() {
    let cohort = generate(&CohortSpec {
        n_genes: 14,
        n_tumor: 150,
        n_normal: 80,
        n_driver_combos: 3,
        hits_per_combo: 4,
        driver_penetrance: 0.9,
        passenger_rate_tumor: 0.05,
        passenger_rate_normal: 0.02,
        seed: 99,
    });
    println!(
        "cohort: {} genes → C(G,4) = {} combinations per iteration",
        14,
        multihit::core::combin::binomial(14, 4)
    );

    // Single-process reference.
    let reference = discover::<4>(
        &cohort.tumor,
        &cohort.normal,
        &GreedyConfig {
            parallel: false,
            ..GreedyConfig::default()
        },
    );
    println!(
        "reference run: {} combinations",
        reference.combinations.len()
    );

    for (nodes, gpus) in [(1usize, 2usize), (2, 3), (4, 6)] {
        let cfg = DistributedConfig {
            shape: ClusterShape {
                nodes,
                gpus_per_node: gpus,
            },
            scheme: Scheme4::ThreeXOne,
            scheduler: SchedulerKind::EquiArea,
            ..DistributedConfig::default()
        };
        let dist = distributed_discover4(&cohort.tumor, &cohort.normal, &cfg);
        let agree = dist.combinations == reference.combinations;
        println!(
            "  {nodes} node(s) x {gpus} GPU(s) = {:>2} ranges: {} combinations, matches reference: {agree}",
            nodes * gpus,
            dist.combinations.len(),
        );
        assert!(agree, "distributed result diverged from reference");
        // Show the equi-area balance of the first iteration.
        let combos = &dist.iterations[0].combos_per_gpu;
        let max = combos.iter().max().unwrap();
        let min = combos.iter().min().unwrap();
        println!("      per-GPU combinations: min {min}, max {max}");
    }
    println!("\nall cluster shapes reproduce the reference exactly.");
}
